// Package httpapi exposes the content provider over JSON/HTTP and gives
// clients an SDK speaking the same protocol, so the P2DRM parties can run
// in separate processes (cmd/p2drmd + cmd/p2drm).
//
// # Two API surfaces
//
// The production surface lives under /v2/ and follows snapd's REST
// design: every response is a uniform envelope
//
//	{"type":"sync","status-code":200,"result":...}
//	{"type":"async","status-code":202,"operation":"/v2/operations/ID","result":{...}}
//	{"type":"error","status-code":4xx,"result":{"message":"...","kind":"..."}}
//
// routes carry a minimum auth tier (guest read, authenticated user,
// trusted admin — see Auth), and every long-running action (compaction,
// revocation-list rebuild, bulk batch issuance, replica promotion and
// resync) answers 202 Accepted with an operation URL pollable at
// GET /v2/operations/{id}. Operations persist in the kvstore-backed
// ops.Registry, so an operation in flight when the daemon dies is still
// visible — resumed or marked aborted — after restart.
//
// The original /v1/ surface is kept as thin compatibility shims over
// the same endpoint cores: bare JSON bodies, `{"error":...}` failures,
// identical status codes. Each shim enforces the same auth tier as its
// /v2 equivalent, so configured tokens protect the whole surface (with
// no tokens configured both versions stay open). New clients should
// speak /v2/; docs/rest.md is the authoritative reference for both.
//
// # Wire conventions
//
// Binary artifacts (licenses, proofs, blinded blobs) travel
// base64-encoded inside JSON envelopes. The three batch endpoints share
// one shape: up to maxBatchItems slots, per-slot outcomes in request
// order (a malformed or failed slot never voids the rest), and the
// provider's shared worker pool underneath.
package httpapi

import (
	"bytes"
	cryptorand "crypto/rand"
	"crypto/rsa"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net/http"
	"time"

	"p2drm/internal/cryptox/schnorr"
	"p2drm/internal/kvstore"
	"p2drm/internal/license"
	"p2drm/internal/ops"
	"p2drm/internal/payment"
	"p2drm/internal/provider"
	"p2drm/internal/replica"
	"p2drm/internal/revocation"
)

// Server wraps a provider with HTTP handlers. When Bank is non-nil the
// demo bank endpoints (account creation, blind withdrawal) are exposed
// too, so a single daemon can serve complete out-of-process flows.
type Server struct {
	api
	Provider *provider.Provider
	Bank     *payment.Bank
	// stores are the kvstore instances surfaced by stats, kv/get|has and
	// async compaction, keyed by a human-readable name (registered
	// before serving starts).
	stores map[string]*kvstore.Store
	// replicas are the replication sources served under replica/*,
	// keyed like stores (registered before serving starts).
	replicas map[string]*replica.Source
}

// NewServer builds the handler tree: the /v2/ envelope surface plus the
// /v1/ compatibility shims over the same endpoint cores.
func NewServer(p *provider.Provider) *Server {
	s := &Server{Provider: p, api: newAPI()}
	s.legacy("GET", "/v1/catalog", TierGuest, s.epCatalog)
	s.legacyRaw("GET", "/v1/content", TierGuest, s.handleContent)
	s.legacy("GET", "/v1/denomination", TierGuest, s.epDenomination)
	s.legacy("GET", "/v1/challenge", TierGuest, s.epChallenge)
	s.legacy("POST", "/v1/register", TierUser, s.epRegister)
	s.legacy("POST", "/v1/purchase", TierUser, s.epPurchase)
	s.legacy("POST", "/v1/purchase/batch", TierUser, s.epPurchaseBatch)
	s.legacy("POST", "/v1/exchange", TierUser, s.epExchange)
	s.legacy("POST", "/v1/exchange/batch", TierUser, s.epExchangeBatch)
	s.legacy("POST", "/v1/redeem", TierUser, s.epRedeem)
	s.legacy("POST", "/v1/redeem/batch", TierUser, s.epRedeemBatch)
	s.legacy("GET", "/v1/revocation/filter", TierGuest, s.epFilter)
	s.legacy("GET", "/v1/revocation/contains", TierGuest, s.epRevocationContains)
	s.legacy("GET", "/v1/stats", TierGuest, s.epStats)
	s.legacy("GET", "/v1/kv/get", TierGuest, s.epKVGet)
	s.legacy("GET", "/v1/kv/has", TierGuest, s.epKVHas)
	s.legacy("GET", "/v1/replica/manifest", TierGuest, s.epReplicaManifest)
	s.legacyRaw("GET", "/v1/replica/segment/{id}", TierGuest, s.handleReplicaSegment)
	s.legacy("POST", "/v1/replica/release", TierUser, s.epReplicaRelease)
	s.legacy("GET", "/v1/replica/status", TierGuest, s.epReplicaStatus)
	s.legacy("GET", "/v1/provider/key", TierGuest, s.epProviderKey)
	s.legacy("GET", "/v1/bank/coinkey", TierGuest, s.epCoinKey)
	s.legacy("POST", "/v1/bank/account", TierAdmin, s.epBankAccount)
	s.legacy("POST", "/v1/bank/withdraw", TierUser, s.epWithdraw)
	s.registerV2()
	if p != nil {
		s.registerCryptoMetrics()
		s.registerCryptoHealth()
	}
	return s
}

// WithBank attaches a demo bank.
func (s *Server) WithBank(b *payment.Bank) *Server {
	s.Bank = b
	return s
}

// WithStoreStats registers a kvstore under name for stats, kv reads and
// async compaction. Call before serving starts (registration is not
// synchronized).
func (s *Server) WithStoreStats(name string, st *kvstore.Store) *Server {
	if s.stores == nil {
		s.stores = make(map[string]*kvstore.Store)
	}
	s.stores[name] = st
	registerStoreMetrics(s.obs.Reg, name, st)
	registerStoreHealth(s.obs.Health, name, st)
	return s
}

// WithOps replaces the default volatile operations registry with reg —
// typically a kvstore-backed one so operations survive restarts. Call
// before serving starts.
func (s *Server) WithOps(reg *ops.Registry) *Server {
	s.ops = reg
	return s
}

// WithAuth installs the access policy (see Auth). Call before serving
// starts; the zero policy leaves the API open.
func (s *Server) WithAuth(a Auth) *Server {
	s.auth = a
	return s
}

// BankAccountRequest opens a funded demo account.
type BankAccountRequest struct {
	ID    string `json:"id"`
	Funds int64  `json:"funds"`
}

// WithdrawRequest requests one blind-signed coin.
type WithdrawRequest struct {
	Account string `json:"account"`
	Blinded string `json:"blinded"`
}

// WithdrawResponse carries the bank's blind signature.
type WithdrawResponse struct {
	BlindSig string `json:"blind_sig"`
}

func (s *Server) epProviderKey(r *http.Request) (any, *apiError) {
	pub := s.Provider.Public()
	return map[string]interface{}{"n": b64(pub.N.Bytes()), "e": pub.E}, nil
}

func (s *Server) epCoinKey(r *http.Request) (any, *apiError) {
	if s.Bank == nil {
		return nil, errNotFound(errors.New("httpapi: no bank attached"))
	}
	pub := s.Bank.CoinPub()
	return map[string]interface{}{"n": b64(pub.N.Bytes()), "e": pub.E}, nil
}

func (s *Server) epBankAccount(r *http.Request) (any, *apiError) {
	if s.Bank == nil {
		return nil, errNotFound(errors.New("httpapi: no bank attached"))
	}
	var req BankAccountRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, errBadRequest(err)
	}
	if err := s.Bank.CreateAccount(req.ID, req.Funds); err != nil {
		return nil, errRejected(err)
	}
	return map[string]string{"status": "created"}, nil
}

func (s *Server) epWithdraw(r *http.Request) (any, *apiError) {
	if s.Bank == nil {
		return nil, errNotFound(errors.New("httpapi: no bank attached"))
	}
	var req WithdrawRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, errBadRequest(err)
	}
	blinded, err := unb64(req.Blinded)
	if err != nil {
		return nil, errBadRequest(err)
	}
	sig, err := s.Bank.Withdraw(req.Account, blinded)
	if err != nil {
		return nil, errRejected(err)
	}
	return WithdrawResponse{BlindSig: b64(sig)}, nil
}

// ProviderKey fetches the provider's license/revocation verification key.
// Clients should pin it on first use.
func (c *Client) ProviderKey() (*rsa.PublicKey, error) {
	var out struct {
		N string `json:"n"`
		E int    `json:"e"`
	}
	if err := c.get("/v1/provider/key", &out); err != nil {
		return nil, err
	}
	nBytes, err := unb64(out.N)
	if err != nil {
		return nil, err
	}
	return &rsa.PublicKey{N: new(big.Int).SetBytes(nBytes), E: out.E}, nil
}

// CoinKey fetches the bank's coin verification key.
func (c *Client) CoinKey() (*rsa.PublicKey, error) {
	var out struct {
		N string `json:"n"`
		E int    `json:"e"`
	}
	if err := c.get("/v1/bank/coinkey", &out); err != nil {
		return nil, err
	}
	nBytes, err := unb64(out.N)
	if err != nil {
		return nil, err
	}
	return &rsa.PublicKey{N: new(big.Int).SetBytes(nBytes), E: out.E}, nil
}

// CreateAccount opens a demo bank account.
func (c *Client) CreateAccount(id string, funds int64) error {
	return c.post("/v1/bank/account", BankAccountRequest{ID: id, Funds: funds}, nil)
}

// WithdrawCoins mints n coins over the wire (blind withdrawal loop).
func (c *Client) WithdrawCoins(account string, n int) ([]*payment.Coin, error) {
	pub, err := c.CoinKey()
	if err != nil {
		return nil, err
	}
	coins := make([]*payment.Coin, 0, n)
	for i := 0; i < n; i++ {
		req, err := payment.NewCoinRequest(pub, cryptorand.Reader)
		if err != nil {
			return nil, err
		}
		var resp WithdrawResponse
		if err := c.post("/v1/bank/withdraw", WithdrawRequest{Account: account, Blinded: b64(req.Blinded)}, &resp); err != nil {
			return nil, err
		}
		blindSig, err := unb64(resp.BlindSig)
		if err != nil {
			return nil, err
		}
		coin, err := req.Finish(pub, blindSig)
		if err != nil {
			return nil, err
		}
		coins = append(coins, coin)
	}
	return coins, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.api.serveHTTP(w, r) }

// Wire types.

type errorBody struct {
	Error string `json:"error"`
}

// CatalogEntry is a catalog row.
type CatalogEntry struct {
	ID           string `json:"id"`
	Title        string `json:"title"`
	PriceCredits int64  `json:"price_credits"`
	Rights       string `json:"rights"`
}

// DenominationInfo carries a denomination verification key.
type DenominationInfo struct {
	ContentID string `json:"content_id"`
	Denom     string `json:"denom"`
	N         string `json:"n"` // big-endian base64 modulus
	E         int    `json:"e"`
}

// RegisterRequest registers a pseudonym.
type RegisterRequest struct {
	SignPub string `json:"sign_pub"`
	EncPub  string `json:"enc_pub"`
	Proof   string `json:"proof"`
	Nonce   string `json:"nonce"`
}

// PurchaseRequest buys a license.
type PurchaseRequest struct {
	ContentID string   `json:"content_id"`
	SignPub   string   `json:"sign_pub"`
	EncPub    string   `json:"enc_pub"`
	Coins     []string `json:"coins"` // serial||sig, base64
}

// LicenseResponse returns a marshaled personalized license.
type LicenseResponse struct {
	License string `json:"license"`
}

// BatchPurchaseRequest carries several purchases settled as one call on
// the provider's worker pool.
type BatchPurchaseRequest struct {
	Purchases []PurchaseRequest `json:"purchases"`
}

// BatchPurchaseResult is one per-purchase outcome: exactly one of
// License and Error is set.
type BatchPurchaseResult struct {
	License string `json:"license,omitempty"`
	Error   string `json:"error,omitempty"`
}

// BatchPurchaseResponse returns outcomes in request order.
type BatchPurchaseResponse struct {
	Results []BatchPurchaseResult `json:"results"`
}

// ExchangeRequest retires a license for a blind signature.
type ExchangeRequest struct {
	License string `json:"license"`
	Proof   string `json:"proof"`
	Nonce   string `json:"nonce"`
	Blinded string `json:"blinded"`
}

// ExchangeResponse carries the blind signature.
type ExchangeResponse struct {
	BlindSig string `json:"blind_sig"`
}

// BatchExchangeRequest carries several exchanges settled as one call on
// the provider's worker pool.
type BatchExchangeRequest struct {
	Exchanges []ExchangeRequest `json:"exchanges"`
}

// BatchExchangeResult is one per-exchange outcome: exactly one of
// BlindSig and Error is set.
type BatchExchangeResult struct {
	BlindSig string `json:"blind_sig,omitempty"`
	Error    string `json:"error,omitempty"`
}

// BatchExchangeResponse returns outcomes in request order.
type BatchExchangeResponse struct {
	Results []BatchExchangeResult `json:"results"`
}

// RedeemRequest redeems an anonymous license.
type RedeemRequest struct {
	Anonymous string `json:"anonymous"`
	SignPub   string `json:"sign_pub"`
	EncPub    string `json:"enc_pub"`
}

// BatchRedeemRequest carries several redemptions settled as one call on
// the provider's worker pool.
type BatchRedeemRequest struct {
	Redeems []RedeemRequest `json:"redeems"`
}

// BatchRedeemResult is one per-redeem outcome: exactly one of License
// and Error is set.
type BatchRedeemResult struct {
	License string `json:"license,omitempty"`
	Error   string `json:"error,omitempty"`
}

// BatchRedeemResponse returns outcomes in request order.
type BatchRedeemResponse struct {
	Results []BatchRedeemResult `json:"results"`
}

// FilterResponse carries a signed revocation filter.
type FilterResponse struct {
	Filter   string    `json:"filter"`
	IssuedAt time.Time `json:"issued_at"`
	Sig      string    `json:"sig"`
}

// StatsResponse reports per-store kvstore engine statistics (segments,
// live keys, dead bytes, compactions), keyed by the name each store was
// registered under, plus — on primaries — the crypto acceleration
// gauges (precompute state, nonce/blinding pool depth and hit rate,
// batch proof-verification counters). Replicas leave Crypto unset.
type StatsResponse struct {
	Stores map[string]kvstore.Stats `json:"stores"`
	Crypto *provider.CryptoStats    `json:"crypto,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func b64(b []byte) string { return base64.StdEncoding.EncodeToString(b) }

func unb64(s string) ([]byte, error) { return base64.StdEncoding.DecodeString(s) }

func (s *Server) epCatalog(r *http.Request) (any, *apiError) {
	items := s.Provider.Catalog()
	out := make([]CatalogEntry, 0, len(items))
	for _, it := range items {
		out = append(out, CatalogEntry{
			ID: string(it.ID), Title: it.Title,
			PriceCredits: it.PriceCredits, Rights: it.Template.String(),
		})
	}
	return out, nil
}

// handleContent streams the encrypted blob; shared raw handler for both
// API versions (errFn shapes the failure body per surface).
func (s *Server) serveContent(w http.ResponseWriter, r *http.Request, errFn func(http.ResponseWriter, *apiError)) {
	item, err := s.Provider.Item(license.ContentID(r.URL.Query().Get("id")))
	if err != nil {
		errFn(w, errNotFound(err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(item.Encrypted)
}

func (s *Server) handleContent(w http.ResponseWriter, r *http.Request) {
	s.serveContent(w, r, func(w http.ResponseWriter, e *apiError) { writeErr(w, e.status, e) })
}

func (s *Server) epDenomination(r *http.Request) (any, *apiError) {
	id := license.ContentID(r.URL.Query().Get("id"))
	pub, denom, err := s.Provider.DenomPublic(id)
	if err != nil {
		return nil, errNotFound(err)
	}
	return DenominationInfo{
		ContentID: string(id),
		Denom:     denom.String(),
		N:         b64(pub.N.Bytes()),
		E:         pub.E,
	}, nil
}

func (s *Server) epChallenge(r *http.Request) (any, *apiError) {
	nonce, err := s.Provider.Challenge(r.Context())
	if err != nil {
		return nil, errInternal(err)
	}
	return map[string]string{"nonce": nonce}, nil
}

func (s *Server) epRegister(r *http.Request) (any, *apiError) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, errBadRequest(err)
	}
	signPub, err1 := unb64(req.SignPub)
	encPub, err2 := unb64(req.EncPub)
	proofBytes, err3 := unb64(req.Proof)
	if err1 != nil || err2 != nil || err3 != nil {
		return nil, errBadRequest(errors.New("httpapi: bad base64 field"))
	}
	proof, err := schnorr.ParseProof(s.Provider.Group(), proofBytes)
	if err != nil {
		return nil, errBadRequest(err)
	}
	if err := s.Provider.Register(r.Context(), signPub, encPub, proof, req.Nonce); err != nil {
		return nil, errRejected(err)
	}
	return map[string]string{"status": "registered"}, nil
}

// encodeCoin flattens a coin for the wire.
func encodeCoin(c *payment.Coin) string {
	return b64(append(append([]byte(nil), c.Serial[:]...), c.Sig...))
}

func decodeCoin(s string) (*payment.Coin, error) {
	raw, err := unb64(s)
	if err != nil || len(raw) < payment.CoinSerialLen+1 {
		return nil, errors.New("httpapi: malformed coin")
	}
	var c payment.Coin
	copy(c.Serial[:], raw[:payment.CoinSerialLen])
	c.Sig = append([]byte(nil), raw[payment.CoinSerialLen:]...)
	return &c, nil
}

// decodePurchase converts one wire purchase into a provider request.
func decodePurchase(pr PurchaseRequest) (provider.PurchaseRequest, error) {
	signPub, err1 := unb64(pr.SignPub)
	encPub, err2 := unb64(pr.EncPub)
	if err1 != nil || err2 != nil {
		return provider.PurchaseRequest{}, errors.New("httpapi: bad base64 field")
	}
	coins := make([]*payment.Coin, 0, len(pr.Coins))
	for _, cs := range pr.Coins {
		c, err := decodeCoin(cs)
		if err != nil {
			return provider.PurchaseRequest{}, err
		}
		coins = append(coins, c)
	}
	return provider.PurchaseRequest{
		ContentID: license.ContentID(pr.ContentID),
		SignPub:   signPub, EncPub: encPub, Coins: coins,
	}, nil
}

func (s *Server) epPurchase(r *http.Request) (any, *apiError) {
	var req PurchaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, errBadRequest(err)
	}
	preq, err := decodePurchase(req)
	if err != nil {
		return nil, errBadRequest(err)
	}
	lic, err := s.Provider.Purchase(r.Context(), preq)
	if err != nil {
		return nil, errRejected(err)
	}
	return LicenseResponse{License: b64(lic.Marshal())}, nil
}

// maxBatchItems bounds one batch call's memory and response latency
// (purchase, exchange and redeem alike); CPU fairness across batches is
// enforced by the provider's shared worker semaphore, not by this cap.
const maxBatchItems = 256

// checkBatchSize enforces the shared batch-size bound.
func checkBatchSize(n int) *apiError {
	if n == 0 || n > maxBatchItems {
		return errBadRequest(fmt.Errorf("httpapi: batch size must be 1..%d", maxBatchItems))
	}
	return nil
}

// decodeSlots decodes each wire slot of a batch, reporting decode
// failures per slot through fail (one malformed entry must not void the
// rest), and returns the surviving items plus their original indexes so
// pool results can be mapped back to response slots.
func decodeSlots[W, I any](ws []W, decode func(W) (I, error), fail func(i int, err error)) (items []I, slots []int) {
	items = make([]I, 0, len(ws))
	slots = make([]int, 0, len(ws))
	for i, w := range ws {
		item, err := decode(w)
		if err != nil {
			fail(i, err)
			continue
		}
		items = append(items, item)
		slots = append(slots, i)
	}
	return items, slots
}

func (s *Server) epPurchaseBatch(r *http.Request) (any, *apiError) {
	var req BatchPurchaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, errBadRequest(err)
	}
	if e := checkBatchSize(len(req.Purchases)); e != nil {
		return nil, e
	}
	resp := BatchPurchaseResponse{Results: make([]BatchPurchaseResult, len(req.Purchases))}
	reqs, slots := decodeSlots(req.Purchases, decodePurchase,
		func(i int, err error) { resp.Results[i].Error = err.Error() })
	for j, res := range s.Provider.IssueBatch(r.Context(), reqs) {
		i := slots[j]
		if res.Err != nil {
			resp.Results[i].Error = res.Err.Error()
			continue
		}
		resp.Results[i].License = b64(res.License.Marshal())
	}
	return resp, nil
}

// decodeExchange converts one wire exchange into a provider item.
func (s *Server) decodeExchange(er ExchangeRequest) (provider.ExchangeItem, error) {
	licBytes, err1 := unb64(er.License)
	proofBytes, err2 := unb64(er.Proof)
	blinded, err3 := unb64(er.Blinded)
	if err1 != nil || err2 != nil || err3 != nil {
		return provider.ExchangeItem{}, errors.New("httpapi: bad base64 field")
	}
	lic, err := license.UnmarshalPersonalized(licBytes)
	if err != nil {
		return provider.ExchangeItem{}, err
	}
	proof, err := schnorr.ParseProof(s.Provider.Group(), proofBytes)
	if err != nil {
		return provider.ExchangeItem{}, err
	}
	return provider.ExchangeItem{License: lic, Proof: proof, Nonce: er.Nonce, Blinded: blinded}, nil
}

// decodeRedeem converts one wire redeem into a provider item.
func decodeRedeem(rr RedeemRequest) (provider.RedeemItem, error) {
	anonBytes, err1 := unb64(rr.Anonymous)
	signPub, err2 := unb64(rr.SignPub)
	encPub, err3 := unb64(rr.EncPub)
	if err1 != nil || err2 != nil || err3 != nil {
		return provider.RedeemItem{}, errors.New("httpapi: bad base64 field")
	}
	anon, err := license.UnmarshalAnonymous(anonBytes)
	if err != nil {
		return provider.RedeemItem{}, err
	}
	return provider.RedeemItem{Anonymous: anon, SignPub: signPub, EncPub: encPub}, nil
}

func (s *Server) epExchange(r *http.Request) (any, *apiError) {
	var req ExchangeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, errBadRequest(err)
	}
	item, err := s.decodeExchange(req)
	if err != nil {
		return nil, errBadRequest(err)
	}
	blindSig, err := s.Provider.Exchange(r.Context(), item.License, item.Proof, item.Nonce, item.Blinded)
	if err != nil {
		return nil, errRejected(err)
	}
	return ExchangeResponse{BlindSig: b64(blindSig)}, nil
}

func (s *Server) epExchangeBatch(r *http.Request) (any, *apiError) {
	var req BatchExchangeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, errBadRequest(err)
	}
	if e := checkBatchSize(len(req.Exchanges)); e != nil {
		return nil, e
	}
	resp := BatchExchangeResponse{Results: make([]BatchExchangeResult, len(req.Exchanges))}
	items, slots := decodeSlots(req.Exchanges, s.decodeExchange,
		func(i int, err error) { resp.Results[i].Error = err.Error() })
	for j, res := range s.Provider.ExchangeBatch(r.Context(), items) {
		i := slots[j]
		if res.Err != nil {
			resp.Results[i].Error = res.Err.Error()
			continue
		}
		resp.Results[i].BlindSig = b64(res.BlindSig)
	}
	return resp, nil
}

func (s *Server) epRedeem(r *http.Request) (any, *apiError) {
	var req RedeemRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, errBadRequest(err)
	}
	item, err := decodeRedeem(req)
	if err != nil {
		return nil, errBadRequest(err)
	}
	lic, err := s.Provider.Redeem(r.Context(), item.Anonymous, item.SignPub, item.EncPub)
	if err != nil {
		return nil, errRejected(err)
	}
	return LicenseResponse{License: b64(lic.Marshal())}, nil
}

func (s *Server) epRedeemBatch(r *http.Request) (any, *apiError) {
	var req BatchRedeemRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, errBadRequest(err)
	}
	if e := checkBatchSize(len(req.Redeems)); e != nil {
		return nil, e
	}
	resp := BatchRedeemResponse{Results: make([]BatchRedeemResult, len(req.Redeems))}
	items, slots := decodeSlots(req.Redeems, decodeRedeem,
		func(i int, err error) { resp.Results[i].Error = err.Error() })
	for j, res := range s.Provider.RedeemBatch(r.Context(), items) {
		i := slots[j]
		if res.Err != nil {
			resp.Results[i].Error = res.Err.Error()
			continue
		}
		resp.Results[i].License = b64(res.License.Marshal())
	}
	return resp, nil
}

func (s *Server) epStats(r *http.Request) (any, *apiError) {
	resp := StatsResponse{Stores: make(map[string]kvstore.Stats, len(s.stores))}
	for name, st := range s.stores {
		resp.Stores[name] = st.Stats()
	}
	if s.Provider != nil {
		resp.Crypto = s.Provider.CryptoStats()
	}
	return resp, nil
}

func (s *Server) epFilter(r *http.Request) (any, *apiError) {
	sf, err := s.Provider.RevocationFilter()
	if err != nil {
		return nil, errInternal(err)
	}
	return FilterResponse{
		Filter: b64(sf.Filter), IssuedAt: sf.IssuedAt, Sig: b64(sf.Sig),
	}, nil
}

// epRevocationContains is the primary's exact-answer revocation check,
// mirroring the replica endpoint so clients can point the same call at
// either tier: the bloom filter is the offline approximation, this is
// the authoritative store lookup.
func (s *Server) epRevocationContains(r *http.Request) (any, *apiError) {
	raw, err := base64.URLEncoding.DecodeString(r.URL.Query().Get("serial"))
	var serial license.Serial
	if err != nil || len(raw) != len(serial) {
		return nil, errBadRequest(errors.New("httpapi: bad serial (want base64url of exact length)"))
	}
	copy(serial[:], raw)
	return KVValueResponse{Found: s.Provider.Revoked(serial)}, nil
}

// Client is the SDK speaking to a Server. The /v1 helpers talk bare
// JSON; the /v2 helpers (client_v2.go) speak the envelope and attach
// Token as a bearer credential when set.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	Group   *schnorr.Group
	// Token is the bearer credential sent on /v2 requests (empty for
	// guest access).
	Token string
}

// NewClient builds a client; group must match the server's.
func NewClient(baseURL string, g *schnorr.Group) *Client {
	return &Client{BaseURL: baseURL, HTTP: http.DefaultClient, Group: g}
}

// newReq builds a request against BaseURL with the client's bearer
// token attached — the same credential serves both API versions, since
// the server enforces the same tiers on /v1 and /v2.
func (c *Client) newReq(method, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return nil, err
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	return req, nil
}

func (c *Client) get(path string, out interface{}) error {
	req, err := c.newReq("GET", path, nil)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResp(resp, out)
}

func (c *Client) post(path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := c.newReq("POST", path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResp(resp, out)
}

func decodeResp(resp *http.Response, out interface{}) error {
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err == nil && eb.Error != "" {
			return fmt.Errorf("httpapi: server: %s", eb.Error)
		}
		return fmt.Errorf("httpapi: status %d", resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Catalog lists items.
func (c *Client) Catalog() ([]CatalogEntry, error) {
	var out []CatalogEntry
	return out, c.get("/v1/catalog", &out)
}

// Content downloads an encrypted content blob.
func (c *Client) Content(id license.ContentID) ([]byte, error) {
	req, err := c.newReq("GET", "/v1/content?id="+string(id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("httpapi: status %d", resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// Denomination fetches an item's blind-signature verification key.
func (c *Client) Denomination(id license.ContentID) (*rsa.PublicKey, license.DenominationID, error) {
	var info DenominationInfo
	if err := c.get("/v1/denomination?id="+string(id), &info); err != nil {
		return nil, license.DenominationID{}, err
	}
	nBytes, err := unb64(info.N)
	if err != nil {
		return nil, license.DenominationID{}, err
	}
	var denom license.DenominationID
	db, err := unb64From(info.Denom)
	if err != nil || len(db) != len(denom) {
		return nil, license.DenominationID{}, errors.New("httpapi: bad denomination id")
	}
	copy(denom[:], db)
	return &rsa.PublicKey{N: new(big.Int).SetBytes(nBytes), E: info.E}, denom, nil
}

// unb64From parses the hex denomination id (DenominationID.String is hex).
func unb64From(hexStr string) ([]byte, error) {
	out := make([]byte, len(hexStr)/2)
	_, err := fmt.Sscanf(hexStr, "%x", &out)
	return out, err
}

// Challenge fetches a nonce.
func (c *Client) Challenge() (string, error) {
	var out map[string]string
	if err := c.get("/v1/challenge", &out); err != nil {
		return "", err
	}
	return out["nonce"], nil
}

// Register registers a pseudonym.
func (c *Client) Register(signPub, encPub []byte, proof *schnorr.Proof, nonce string) error {
	req := RegisterRequest{
		SignPub: b64(signPub), EncPub: b64(encPub),
		Proof: b64(proof.Bytes(c.Group)), Nonce: nonce,
	}
	return c.post("/v1/register", req, nil)
}

// Purchase buys a license with coins.
func (c *Client) Purchase(id license.ContentID, signPub, encPub []byte, coins []*payment.Coin) (*license.Personalized, error) {
	req := PurchaseRequest{ContentID: string(id), SignPub: b64(signPub), EncPub: b64(encPub)}
	for _, coin := range coins {
		req.Coins = append(req.Coins, encodeCoin(coin))
	}
	var resp LicenseResponse
	if err := c.post("/v1/purchase", req, &resp); err != nil {
		return nil, err
	}
	raw, err := unb64(resp.License)
	if err != nil {
		return nil, err
	}
	return license.UnmarshalPersonalized(raw)
}

// BatchPurchase is one typed entry for Client.PurchaseBatch, mirroring
// the arguments of Client.Purchase.
type BatchPurchase struct {
	ContentID license.ContentID
	SignPub   []byte
	EncPub    []byte
	Coins     []*payment.Coin
}

// PurchaseBatch buys several licenses in one round trip. Outcomes come
// back in request order; per-item failures are returned as errors in the
// slice, not as a call-level error.
func (c *Client) PurchaseBatch(items []BatchPurchase) ([]*license.Personalized, []error, error) {
	reqs := encodePurchases(items)
	var resp BatchPurchaseResponse
	if err := c.post("/v1/purchase/batch", BatchPurchaseRequest{Purchases: reqs}, &resp); err != nil {
		return nil, nil, err
	}
	return decodePurchaseResults(resp, len(reqs))
}

func encodePurchases(items []BatchPurchase) []PurchaseRequest {
	reqs := make([]PurchaseRequest, len(items))
	for i, it := range items {
		reqs[i] = PurchaseRequest{
			ContentID: string(it.ContentID), SignPub: b64(it.SignPub), EncPub: b64(it.EncPub),
		}
		for _, coin := range it.Coins {
			reqs[i].Coins = append(reqs[i].Coins, encodeCoin(coin))
		}
	}
	return reqs
}

func decodePurchaseResults(resp BatchPurchaseResponse, want int) ([]*license.Personalized, []error, error) {
	if len(resp.Results) != want {
		return nil, nil, fmt.Errorf("httpapi: batch returned %d results for %d requests", len(resp.Results), want)
	}
	lics := make([]*license.Personalized, want)
	errs := make([]error, want)
	for i, res := range resp.Results {
		if res.Error != "" {
			errs[i] = fmt.Errorf("httpapi: server: %s", res.Error)
			continue
		}
		raw, err := unb64(res.License)
		if err != nil {
			errs[i] = err
			continue
		}
		if lics[i], err = license.UnmarshalPersonalized(raw); err != nil {
			errs[i] = err
		}
	}
	return lics, errs, nil
}

// Exchange retires a license for a blind signature over blinded.
func (c *Client) Exchange(lic *license.Personalized, proof *schnorr.Proof, nonce string, blinded []byte) ([]byte, error) {
	req := ExchangeRequest{
		License: b64(lic.Marshal()), Proof: b64(proof.Bytes(c.Group)),
		Nonce: nonce, Blinded: b64(blinded),
	}
	var resp ExchangeResponse
	if err := c.post("/v1/exchange", req, &resp); err != nil {
		return nil, err
	}
	return unb64(resp.BlindSig)
}

// BatchExchange is one typed entry for Client.ExchangeBatch, mirroring
// the arguments of Client.Exchange.
type BatchExchange struct {
	License *license.Personalized
	Proof   *schnorr.Proof
	Nonce   string
	Blinded []byte
}

// ExchangeBatch retires several licenses in one round trip. Blind
// signatures come back in request order; per-item failures are returned
// as errors in the slice, not as a call-level error.
func (c *Client) ExchangeBatch(items []BatchExchange) ([][]byte, []error, error) {
	reqs := make([]ExchangeRequest, len(items))
	for i, it := range items {
		reqs[i] = ExchangeRequest{
			License: b64(it.License.Marshal()), Proof: b64(it.Proof.Bytes(c.Group)),
			Nonce: it.Nonce, Blinded: b64(it.Blinded),
		}
	}
	var resp BatchExchangeResponse
	if err := c.post("/v1/exchange/batch", BatchExchangeRequest{Exchanges: reqs}, &resp); err != nil {
		return nil, nil, err
	}
	if len(resp.Results) != len(reqs) {
		return nil, nil, fmt.Errorf("httpapi: batch returned %d results for %d requests", len(resp.Results), len(reqs))
	}
	sigs := make([][]byte, len(reqs))
	errs := make([]error, len(reqs))
	for i, res := range resp.Results {
		if res.Error != "" {
			errs[i] = fmt.Errorf("httpapi: server: %s", res.Error)
			continue
		}
		var err error
		if sigs[i], err = unb64(res.BlindSig); err != nil {
			errs[i] = err
		}
	}
	return sigs, errs, nil
}

// Redeem converts an anonymous license into a personalized one.
func (c *Client) Redeem(anon *license.Anonymous, signPub, encPub []byte) (*license.Personalized, error) {
	req := RedeemRequest{Anonymous: b64(anon.Marshal()), SignPub: b64(signPub), EncPub: b64(encPub)}
	var resp LicenseResponse
	if err := c.post("/v1/redeem", req, &resp); err != nil {
		return nil, err
	}
	raw, err := unb64(resp.License)
	if err != nil {
		return nil, err
	}
	return license.UnmarshalPersonalized(raw)
}

// BatchRedeem is one typed entry for Client.RedeemBatch, mirroring the
// arguments of Client.Redeem.
type BatchRedeem struct {
	Anonymous *license.Anonymous
	SignPub   []byte
	EncPub    []byte
}

// RedeemBatch redeems several anonymous licenses in one round trip.
// Licenses come back in request order; per-item failures are returned as
// errors in the slice, not as a call-level error.
func (c *Client) RedeemBatch(items []BatchRedeem) ([]*license.Personalized, []error, error) {
	reqs := make([]RedeemRequest, len(items))
	for i, it := range items {
		reqs[i] = RedeemRequest{
			Anonymous: b64(it.Anonymous.Marshal()),
			SignPub:   b64(it.SignPub), EncPub: b64(it.EncPub),
		}
	}
	var resp BatchRedeemResponse
	if err := c.post("/v1/redeem/batch", BatchRedeemRequest{Redeems: reqs}, &resp); err != nil {
		return nil, nil, err
	}
	if len(resp.Results) != len(reqs) {
		return nil, nil, fmt.Errorf("httpapi: batch returned %d results for %d requests", len(resp.Results), len(reqs))
	}
	lics := make([]*license.Personalized, len(reqs))
	errs := make([]error, len(reqs))
	for i, res := range resp.Results {
		if res.Error != "" {
			errs[i] = fmt.Errorf("httpapi: server: %s", res.Error)
			continue
		}
		raw, err := unb64(res.License)
		if err != nil {
			errs[i] = err
			continue
		}
		if lics[i], err = license.UnmarshalPersonalized(raw); err != nil {
			errs[i] = err
		}
	}
	return lics, errs, nil
}

// Stats fetches the daemon's kvstore engine statistics.
func (c *Client) Stats() (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.get("/v1/stats", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// RevocationFilter fetches and reassembles the signed filter.
func (c *Client) RevocationFilter() (*revocation.SignedFilter, error) {
	var resp FilterResponse
	if err := c.get("/v1/revocation/filter", &resp); err != nil {
		return nil, err
	}
	filter, err1 := unb64(resp.Filter)
	sig, err2 := unb64(resp.Sig)
	if err1 != nil || err2 != nil {
		return nil, errors.New("httpapi: bad filter encoding")
	}
	return &revocation.SignedFilter{Filter: filter, IssuedAt: resp.IssuedAt, Sig: sig}, nil
}
