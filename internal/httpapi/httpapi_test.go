package httpapi

import (
	"bytes"
	"crypto/rand"
	"crypto/rsa"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"p2drm/internal/cryptox/rsablind"
	"p2drm/internal/cryptox/schnorr"
	"p2drm/internal/kvstore"
	"p2drm/internal/license"
	"p2drm/internal/payment"
	"p2drm/internal/provider"
	"p2drm/internal/rel"
	"p2drm/internal/revocation"
	"p2drm/internal/smartcard"
)

var (
	keysOnce sync.Once
	provKey  *rsa.PrivateKey
	bankKey  *rsa.PrivateKey
)

func keys() (*rsa.PrivateKey, *rsa.PrivateKey) {
	keysOnce.Do(func() {
		var err error
		if provKey, err = rsa.GenerateKey(rand.Reader, 1024); err != nil {
			panic(err)
		}
		if bankKey, err = rsa.GenerateKey(rand.Reader, 1024); err != nil {
			panic(err)
		}
	})
	return provKey, bankKey
}

type harness struct {
	srv    *httptest.Server
	client *Client
	prov   *provider.Provider
	bank   *payment.Bank
	card   *smartcard.Card
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	pk, bk := keys()
	spent, _ := kvstore.Open("")
	bank, err := payment.NewBank(bk, spent)
	if err != nil {
		t.Fatal(err)
	}
	bank.CreateAccount("provider", 0)
	bank.CreateAccount("alice", 50)
	store, _ := kvstore.Open("")
	prov, err := provider.New(provider.Config{
		Group: schnorr.Group768(), SignerKey: pk, DenomKeyBits: 1024,
		Store: store, Bank: bank, BankAccount: "provider",
		Clock: func() time.Time { return time.Date(2004, 11, 1, 0, 0, 0, 0, time.UTC) },
	})
	if err != nil {
		t.Fatal(err)
	}
	template := rel.MustParse("grant play count 10; grant transfer;")
	if _, err := prov.AddContent("song-1", "Song", 1, template, []byte("audio-blob")); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(prov))
	t.Cleanup(srv.Close)
	card, _ := smartcard.NewRandom(schnorr.Group768())
	return &harness{
		srv:    srv,
		client: NewClient(srv.URL, schnorr.Group768()),
		prov:   prov,
		bank:   bank,
		card:   card,
	}
}

// registerOverHTTP runs registration through the client SDK.
func (h *harness) registerOverHTTP(t *testing.T, index uint32) (signPub, encPub []byte) {
	t.Helper()
	g := schnorr.Group768()
	ps, _ := h.card.Pseudonym(index)
	nonce, err := h.client.Challenge()
	if err != nil {
		t.Fatal(err)
	}
	proof, _ := h.card.Prove(index, provider.RegisterContext(nonce))
	if err := h.client.Register(ps.SignPublic(g), ps.EncPublic(g), proof, nonce); err != nil {
		t.Fatal(err)
	}
	return ps.SignPublic(g), ps.EncPublic(g)
}

func TestCatalogAndContent(t *testing.T) {
	h := newHarness(t)
	items, err := h.client.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].ID != "song-1" || items[0].PriceCredits != 1 {
		t.Errorf("catalog = %+v", items)
	}
	if !strings.Contains(items[0].Rights, "grant play count 10") {
		t.Errorf("rights text = %q", items[0].Rights)
	}
	blob, err := h.client.Content("song-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) == 0 {
		t.Error("empty content blob")
	}
	if _, err := h.client.Content("missing"); err == nil {
		t.Error("missing content served")
	}
}

func TestPurchaseOverHTTP(t *testing.T) {
	h := newHarness(t)
	signPub, encPub := h.registerOverHTTP(t, 0)
	coins, _ := h.bank.WithdrawCoins("alice", 1)
	lic, err := h.client.Purchase("song-1", signPub, encPub, coins)
	if err != nil {
		t.Fatal(err)
	}
	if err := license.VerifyPersonalized(h.prov.Public(), lic); err != nil {
		t.Fatalf("license from wire invalid: %v", err)
	}
	// Card can unwrap: the wire roundtrip preserved the key wrap.
	if _, err := h.card.UnwrapContentKey(0, lic.KeyWrap,
		license.WrapLabelPersonalized(lic.Serial, lic.ContentID)); err != nil {
		t.Errorf("unwrap after wire roundtrip: %v", err)
	}
}

func TestFullTransferOverHTTP(t *testing.T) {
	h := newHarness(t)
	g := schnorr.Group768()
	signPub, encPub := h.registerOverHTTP(t, 0)
	coins, _ := h.bank.WithdrawCoins("alice", 1)
	lic, err := h.client.Purchase("song-1", signPub, encPub, coins)
	if err != nil {
		t.Fatal(err)
	}

	// Exchange via HTTP.
	denomPub, denomID, err := h.client.Denomination("song-1")
	if err != nil {
		t.Fatal(err)
	}
	serial, _ := license.NewSerial()
	msg := license.AnonymousSigningBytes(serial, denomID)
	blinded, st, err := rsablind.Blind(denomPub, msg, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	nonce, _ := h.client.Challenge()
	proof, _ := h.card.Prove(0, provider.ExchangeContext(nonce, lic.Serial))
	blindSig, err := h.client.Exchange(lic, proof, nonce, blinded)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := rsablind.Unblind(denomPub, st, blindSig)
	if err != nil {
		t.Fatal(err)
	}
	anon := &license.Anonymous{Serial: serial, Denom: denomID, Sig: sig}

	// Redeem under a new pseudonym (recipient side).
	bobCard, _ := smartcard.NewRandom(g)
	bp, _ := bobCard.Pseudonym(0)
	rn, _ := h.client.Challenge()
	rproof, _ := bobCard.Prove(0, provider.RegisterContext(rn))
	if err := h.client.Register(bp.SignPublic(g), bp.EncPublic(g), rproof, rn); err != nil {
		t.Fatal(err)
	}
	newLic, err := h.client.Redeem(anon, bp.SignPublic(g), bp.EncPublic(g))
	if err != nil {
		t.Fatal(err)
	}
	if err := license.VerifyPersonalized(h.prov.Public(), newLic); err != nil {
		t.Fatalf("redeemed license invalid: %v", err)
	}
	// Old one revoked; filter over HTTP reflects it.
	sf, err := h.client.RevocationFilter()
	if err != nil {
		t.Fatal(err)
	}
	f, err := revocation.VerifyFilter(h.prov.Public(), sf)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Contains(lic.Serial[:]) {
		t.Error("wire filter missing revoked serial")
	}
	// The primary now answers the exact containment check directly (the
	// same SDK call a replica serves), so load-balanced clients can ask
	// either tier.
	if found, err := h.client.RevocationContains(lic.Serial); err != nil || !found {
		t.Errorf("primary RevocationContains(exchanged serial) = %v, %v; want true", found, err)
	}
	if found, err := h.client.RevocationContains(serial); err != nil || found {
		t.Errorf("primary RevocationContains(fresh serial) = %v, %v; want false", found, err)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	h := newHarness(t)
	cases := []struct {
		path, body string
	}{
		{"/v1/register", `{"sign_pub":"!!!","enc_pub":"","proof":"","nonce":"x"}`},
		{"/v1/register", `not-json`},
		{"/v1/purchase", `{"content_id":"song-1","coins":["bad"]}`},
		{"/v1/exchange", `{"license":"AA==","proof":"AA==","blinded":"AA=="}`},
		{"/v1/redeem", `{"anonymous":"AA==","sign_pub":"","enc_pub":""}`},
	}
	for _, tc := range cases {
		resp, err := h.srv.Client().Post(h.srv.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == 200 {
			t.Errorf("POST %s with %q returned 200", tc.path, tc.body)
		}
	}
}

func TestClientErrorSurfacing(t *testing.T) {
	h := newHarness(t)
	// Unregistered pseudonym purchase: the server error must reach the
	// client as text.
	g := schnorr.Group768()
	ps, _ := h.card.Pseudonym(7)
	coins, _ := h.bank.WithdrawCoins("alice", 1)
	_, err := h.client.Purchase("song-1", ps.SignPublic(g), ps.EncPublic(g), coins)
	if err == nil || !strings.Contains(err.Error(), "pseudonym") {
		t.Errorf("err = %v, want pseudonym error from server", err)
	}
}

func TestCoinCodec(t *testing.T) {
	var c payment.Coin
	copy(c.Serial[:], bytes.Repeat([]byte{7}, payment.CoinSerialLen))
	c.Sig = []byte{1, 2, 3}
	back, err := decodeCoin(encodeCoin(&c))
	if err != nil {
		t.Fatal(err)
	}
	if back.Serial != c.Serial || !bytes.Equal(back.Sig, c.Sig) {
		t.Error("coin codec roundtrip mismatch")
	}
	if _, err := decodeCoin("x"); err == nil {
		t.Error("bad coin accepted")
	}
}

// TestExchangeAndRedeemBatchOverHTTP drives the full deposit-side batch
// pipeline through the SDK: buy 3 licenses, retire all three in one
// /v1/exchange/batch call (with one malformed slot), then redeem the
// resulting bearer tokens in one /v1/redeem/batch call (with one replayed
// serial). Per-slot errors must not disturb the healthy slots.
func TestExchangeAndRedeemBatchOverHTTP(t *testing.T) {
	h := newHarness(t)
	g := schnorr.Group768()
	signPub, encPub := h.registerOverHTTP(t, 0)
	denomPub, denomID, err := h.client.Denomination("song-1")
	if err != nil {
		t.Fatal(err)
	}

	const n = 3
	exchanges := make([]BatchExchange, n)
	serials := make([]license.Serial, n)
	states := make([]*rsablind.State, n)
	for i := 0; i < n; i++ {
		coins, err := h.bank.WithdrawCoins("alice", 1)
		if err != nil {
			t.Fatal(err)
		}
		lic, err := h.client.Purchase("song-1", signPub, encPub, coins)
		if err != nil {
			t.Fatal(err)
		}
		serial, _ := license.NewSerial()
		blinded, st, err := rsablind.Blind(denomPub, license.AnonymousSigningBytes(serial, denomID), rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		nonce, err := h.client.Challenge()
		if err != nil {
			t.Fatal(err)
		}
		proof, err := h.card.Prove(0, provider.ExchangeContext(nonce, lic.Serial))
		if err != nil {
			t.Fatal(err)
		}
		exchanges[i] = BatchExchange{License: lic, Proof: proof, Nonce: nonce, Blinded: blinded}
		serials[i], states[i] = serial, st
	}
	// Poison slot 1's nonce: its failure must be slot-local.
	exchanges[1].Nonce = "bogus"

	sigs, errs, err := h.client.ExchangeBatch(exchanges)
	if err != nil {
		t.Fatal(err)
	}
	anons := make([]*license.Anonymous, 0, n)
	for i := 0; i < n; i++ {
		if i == 1 {
			if errs[i] == nil || !strings.Contains(errs[i].Error(), "nonce") {
				t.Errorf("poisoned slot: err = %v, want nonce error", errs[i])
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("slot %d: %v", i, errs[i])
		}
		sig, err := rsablind.Unblind(denomPub, states[i], sigs[i])
		if err != nil {
			t.Fatal(err)
		}
		anons = append(anons, &license.Anonymous{Serial: serials[i], Denom: denomID, Sig: sig})
	}

	// Redeem both bearer tokens plus a replay of the first in one batch.
	bobCard, _ := smartcard.NewRandom(g)
	bp, _ := bobCard.Pseudonym(0)
	rn, _ := h.client.Challenge()
	rproof, _ := bobCard.Prove(0, provider.RegisterContext(rn))
	if err := h.client.Register(bp.SignPublic(g), bp.EncPublic(g), rproof, rn); err != nil {
		t.Fatal(err)
	}
	redeems := []BatchRedeem{
		{Anonymous: anons[0], SignPub: bp.SignPublic(g), EncPub: bp.EncPublic(g)},
		{Anonymous: anons[1], SignPub: bp.SignPublic(g), EncPub: bp.EncPublic(g)},
		{Anonymous: anons[0], SignPub: bp.SignPublic(g), EncPub: bp.EncPublic(g)},
	}
	lics, rerrs, err := h.client.RedeemBatch(redeems)
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for i := range lics {
		if rerrs[i] == nil {
			if err := license.VerifyPersonalized(h.prov.Public(), lics[i]); err != nil {
				t.Errorf("slot %d: invalid license: %v", i, err)
			}
			if i == 0 || i == 2 {
				wins++
			}
			continue
		}
		if i == 1 {
			t.Errorf("healthy slot 1 failed: %v", rerrs[i])
		} else if !strings.Contains(rerrs[i].Error(), "redeemed") {
			t.Errorf("slot %d: err = %v, want already-redeemed", i, rerrs[i])
		}
	}
	if wins != 1 {
		t.Errorf("replayed serial won %d slots, want exactly 1", wins)
	}
}

// TestBatchEndpointsRejectBadSizes: empty and oversized batches are
// call-level errors on all three batch endpoints.
func TestBatchEndpointsRejectBadSizes(t *testing.T) {
	h := newHarness(t)
	for _, tc := range []struct{ path, empty string }{
		{"/v1/purchase/batch", `{"purchases":[]}`},
		{"/v1/exchange/batch", `{"exchanges":[]}`},
		{"/v1/redeem/batch", `{"redeems":[]}`},
	} {
		resp, err := h.srv.Client().Post(h.srv.URL+tc.path, "application/json", strings.NewReader(tc.empty))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("POST %s empty batch: status %d, want 400", tc.path, resp.StatusCode)
		}
	}
	// One malformed slot inside a healthy envelope is a 200 with a
	// per-slot error, never a call failure.
	body := `{"exchanges":[{"license":"!!!","proof":"AA==","nonce":"x","blinded":"AA=="}]}`
	resp, err := h.srv.Client().Post(h.srv.URL+"/v1/exchange/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("malformed slot escalated to status %d, want 200", resp.StatusCode)
	}
	var out BatchExchangeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || out.Results[0].Error == "" {
		t.Errorf("want one per-slot error, got %+v", out.Results)
	}
}

// TestStatsEndpoint: GET /v1/stats reports the registered stores'
// kvstore engine statistics through the client SDK.
func TestStatsEndpoint(t *testing.T) {
	pk, bk := keys()
	dir := t.TempDir()
	store, err := kvstore.OpenWith(dir, kvstore.Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	mem, _ := kvstore.Open("")
	bank, err := payment.NewBank(bk, mem)
	if err != nil {
		t.Fatal(err)
	}
	bank.CreateAccount("provider", 0)
	prov, err := provider.New(provider.Config{
		Group: schnorr.Group768(), SignerKey: pk, DenomKeyBits: 1024,
		Store: store, Bank: bank, BankAccount: "provider",
		Clock: func() time.Time { return time.Date(2004, 11, 1, 0, 0, 0, 0, time.UTC) },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(prov).
		WithStoreStats("provider", store).
		WithStoreStats("bank", mem))
	t.Cleanup(srv.Close)
	client := NewClient(srv.URL, schnorr.Group768())

	if err := store.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Stores) != 2 {
		t.Fatalf("stats for %d stores, want 2", len(resp.Stores))
	}
	ps, ok := resp.Stores["provider"]
	if !ok {
		t.Fatal("provider store missing from stats")
	}
	if ps.Segments < 1 || ps.LiveKeys < 1 || ps.IndexShards != kvstore.DefaultIndexShards {
		t.Errorf("provider stats implausible: %+v", ps)
	}
	if bs := resp.Stores["bank"]; bs.Segments != 0 {
		t.Errorf("in-memory bank store reports %d segments, want 0", bs.Segments)
	}
}
