package httpapi

import (
	"bytes"
	"crypto/rand"
	"crypto/rsa"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"p2drm/internal/cryptox/rsablind"
	"p2drm/internal/cryptox/schnorr"
	"p2drm/internal/kvstore"
	"p2drm/internal/license"
	"p2drm/internal/payment"
	"p2drm/internal/provider"
	"p2drm/internal/rel"
	"p2drm/internal/revocation"
	"p2drm/internal/smartcard"
)

var (
	keysOnce sync.Once
	provKey  *rsa.PrivateKey
	bankKey  *rsa.PrivateKey
)

func keys() (*rsa.PrivateKey, *rsa.PrivateKey) {
	keysOnce.Do(func() {
		var err error
		if provKey, err = rsa.GenerateKey(rand.Reader, 1024); err != nil {
			panic(err)
		}
		if bankKey, err = rsa.GenerateKey(rand.Reader, 1024); err != nil {
			panic(err)
		}
	})
	return provKey, bankKey
}

type harness struct {
	srv    *httptest.Server
	client *Client
	prov   *provider.Provider
	bank   *payment.Bank
	card   *smartcard.Card
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	pk, bk := keys()
	spent, _ := kvstore.Open("")
	bank, err := payment.NewBank(bk, spent)
	if err != nil {
		t.Fatal(err)
	}
	bank.CreateAccount("provider", 0)
	bank.CreateAccount("alice", 50)
	store, _ := kvstore.Open("")
	prov, err := provider.New(provider.Config{
		Group: schnorr.Group768(), SignerKey: pk, DenomKeyBits: 1024,
		Store: store, Bank: bank, BankAccount: "provider",
		Clock: func() time.Time { return time.Date(2004, 11, 1, 0, 0, 0, 0, time.UTC) },
	})
	if err != nil {
		t.Fatal(err)
	}
	template := rel.MustParse("grant play count 10; grant transfer;")
	if _, err := prov.AddContent("song-1", "Song", 1, template, []byte("audio-blob")); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(prov))
	t.Cleanup(srv.Close)
	card, _ := smartcard.NewRandom(schnorr.Group768())
	return &harness{
		srv:    srv,
		client: NewClient(srv.URL, schnorr.Group768()),
		prov:   prov,
		bank:   bank,
		card:   card,
	}
}

// registerOverHTTP runs registration through the client SDK.
func (h *harness) registerOverHTTP(t *testing.T, index uint32) (signPub, encPub []byte) {
	t.Helper()
	g := schnorr.Group768()
	ps, _ := h.card.Pseudonym(index)
	nonce, err := h.client.Challenge()
	if err != nil {
		t.Fatal(err)
	}
	proof, _ := h.card.Prove(index, provider.RegisterContext(nonce))
	if err := h.client.Register(ps.SignPublic(g), ps.EncPublic(g), proof, nonce); err != nil {
		t.Fatal(err)
	}
	return ps.SignPublic(g), ps.EncPublic(g)
}

func TestCatalogAndContent(t *testing.T) {
	h := newHarness(t)
	items, err := h.client.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].ID != "song-1" || items[0].PriceCredits != 1 {
		t.Errorf("catalog = %+v", items)
	}
	if !strings.Contains(items[0].Rights, "grant play count 10") {
		t.Errorf("rights text = %q", items[0].Rights)
	}
	blob, err := h.client.Content("song-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) == 0 {
		t.Error("empty content blob")
	}
	if _, err := h.client.Content("missing"); err == nil {
		t.Error("missing content served")
	}
}

func TestPurchaseOverHTTP(t *testing.T) {
	h := newHarness(t)
	signPub, encPub := h.registerOverHTTP(t, 0)
	coins, _ := h.bank.WithdrawCoins("alice", 1)
	lic, err := h.client.Purchase("song-1", signPub, encPub, coins)
	if err != nil {
		t.Fatal(err)
	}
	if err := license.VerifyPersonalized(h.prov.Public(), lic); err != nil {
		t.Fatalf("license from wire invalid: %v", err)
	}
	// Card can unwrap: the wire roundtrip preserved the key wrap.
	if _, err := h.card.UnwrapContentKey(0, lic.KeyWrap,
		license.WrapLabelPersonalized(lic.Serial, lic.ContentID)); err != nil {
		t.Errorf("unwrap after wire roundtrip: %v", err)
	}
}

func TestFullTransferOverHTTP(t *testing.T) {
	h := newHarness(t)
	g := schnorr.Group768()
	signPub, encPub := h.registerOverHTTP(t, 0)
	coins, _ := h.bank.WithdrawCoins("alice", 1)
	lic, err := h.client.Purchase("song-1", signPub, encPub, coins)
	if err != nil {
		t.Fatal(err)
	}

	// Exchange via HTTP.
	denomPub, denomID, err := h.client.Denomination("song-1")
	if err != nil {
		t.Fatal(err)
	}
	serial, _ := license.NewSerial()
	msg := license.AnonymousSigningBytes(serial, denomID)
	blinded, st, err := rsablind.Blind(denomPub, msg, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	nonce, _ := h.client.Challenge()
	proof, _ := h.card.Prove(0, provider.ExchangeContext(nonce, lic.Serial))
	blindSig, err := h.client.Exchange(lic, proof, nonce, blinded)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := rsablind.Unblind(denomPub, st, blindSig)
	if err != nil {
		t.Fatal(err)
	}
	anon := &license.Anonymous{Serial: serial, Denom: denomID, Sig: sig}

	// Redeem under a new pseudonym (recipient side).
	bobCard, _ := smartcard.NewRandom(g)
	bp, _ := bobCard.Pseudonym(0)
	rn, _ := h.client.Challenge()
	rproof, _ := bobCard.Prove(0, provider.RegisterContext(rn))
	if err := h.client.Register(bp.SignPublic(g), bp.EncPublic(g), rproof, rn); err != nil {
		t.Fatal(err)
	}
	newLic, err := h.client.Redeem(anon, bp.SignPublic(g), bp.EncPublic(g))
	if err != nil {
		t.Fatal(err)
	}
	if err := license.VerifyPersonalized(h.prov.Public(), newLic); err != nil {
		t.Fatalf("redeemed license invalid: %v", err)
	}
	// Old one revoked; filter over HTTP reflects it.
	sf, err := h.client.RevocationFilter()
	if err != nil {
		t.Fatal(err)
	}
	f, err := revocation.VerifyFilter(h.prov.Public(), sf)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Contains(lic.Serial[:]) {
		t.Error("wire filter missing revoked serial")
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	h := newHarness(t)
	cases := []struct {
		path, body string
	}{
		{"/v1/register", `{"sign_pub":"!!!","enc_pub":"","proof":"","nonce":"x"}`},
		{"/v1/register", `not-json`},
		{"/v1/purchase", `{"content_id":"song-1","coins":["bad"]}`},
		{"/v1/exchange", `{"license":"AA==","proof":"AA==","blinded":"AA=="}`},
		{"/v1/redeem", `{"anonymous":"AA==","sign_pub":"","enc_pub":""}`},
	}
	for _, tc := range cases {
		resp, err := h.srv.Client().Post(h.srv.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == 200 {
			t.Errorf("POST %s with %q returned 200", tc.path, tc.body)
		}
	}
}

func TestClientErrorSurfacing(t *testing.T) {
	h := newHarness(t)
	// Unregistered pseudonym purchase: the server error must reach the
	// client as text.
	g := schnorr.Group768()
	ps, _ := h.card.Pseudonym(7)
	coins, _ := h.bank.WithdrawCoins("alice", 1)
	_, err := h.client.Purchase("song-1", ps.SignPublic(g), ps.EncPublic(g), coins)
	if err == nil || !strings.Contains(err.Error(), "pseudonym") {
		t.Errorf("err = %v, want pseudonym error from server", err)
	}
}

func TestCoinCodec(t *testing.T) {
	var c payment.Coin
	copy(c.Serial[:], bytes.Repeat([]byte{7}, payment.CoinSerialLen))
	c.Sig = []byte{1, 2, 3}
	back, err := decodeCoin(encodeCoin(&c))
	if err != nil {
		t.Fatal(err)
	}
	if back.Serial != c.Serial || !bytes.Equal(back.Sig, c.Sig) {
		t.Error("coin codec roundtrip mismatch")
	}
	if _, err := decodeCoin("x"); err == nil {
		t.Error("bad coin accepted")
	}
}
