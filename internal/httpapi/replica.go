package httpapi

// Replication transport: the primary side serves a store's WAL segments
// to followers, the follower side serves read-only traffic plus
// replication status. Segment bytes travel as raw octet-stream bodies
// with identity metadata in X-Replica-* headers — they are CRC-framed
// log records, so JSON/base64 framing would only add bulk.
//
//	Primary (Server, per registered replica source):
//	  GET  /v1/replica/manifest?store=NAME[&pin=1]
//	  GET  /v1/replica/segment/{id}?store=NAME&from=OFF&max=N&gen=G[&pin=ID]
//	  POST /v1/replica/release?store=NAME&pin=ID
//	  GET  /v1/replica/status
//	  GET  /v1/kv/get?store=NAME&key=B64   (read-your-replica checks)
//	  GET  /v1/kv/has?store=NAME&key=B64
//
//	Follower (ReplicaServer):
//	  GET  /v1/kv/get, /v1/kv/has, /v1/stats — served from the replica
//	  GET  /v1/revocation/contains?serial=B64
//	  GET  /v1/replica/status
//	  POST /v1/replica/promote
//	  POST /v1/kv/put — 403 ErrReadOnly until promoted
//
// A compaction-invalidated segment read answers 410 Gone, which the
// client maps back to kvstore.ErrSegmentGone so the follower's snapshot
// fallback triggers exactly as it does in-process.

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"p2drm/internal/kvstore"
	"p2drm/internal/license"
	"p2drm/internal/replica"
	"p2drm/internal/revocation"
)

// WithReplicaSource registers a replication source under name (matching
// the WithStoreStats name so followers address stores consistently).
// Call before serving starts.
func (s *Server) WithReplicaSource(name string, src *replica.Source) *Server {
	if s.replicas == nil {
		s.replicas = make(map[string]*replica.Source)
	}
	s.replicas[name] = src
	return s
}

func (s *Server) replicaSource(w http.ResponseWriter, r *http.Request) (*replica.Source, bool) {
	name := r.URL.Query().Get("store")
	src := s.replicas[name]
	if src == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("httpapi: no replica source %q", name))
		return nil, false
	}
	return src, true
}

func (s *Server) handleReplicaManifest(w http.ResponseWriter, r *http.Request) {
	src, ok := s.replicaSource(w, r)
	if !ok {
		return
	}
	m, err := src.Manifest(r.URL.Query().Get("pin") == "1")
	if err != nil {
		writeErr(w, replicaErrStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// Segment identity/continuation headers; the body is raw log bytes.
const (
	hdrEpoch   = "X-Replica-Epoch"
	hdrSealed  = "X-Replica-Sealed"
	hdrGen     = "X-Replica-Gen"
	hdrTotal   = "X-Replica-Total"
	hdrCRC     = "X-Replica-Crc"
	hdrNext    = "X-Replica-Next"
	hdrNextGen = "X-Replica-Next-Gen"
)

func (s *Server) handleReplicaSegment(w http.ResponseWriter, r *http.Request) {
	src, ok := s.replicaSource(w, r)
	if !ok {
		return
	}
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("httpapi: bad segment id: %w", err))
		return
	}
	q := r.URL.Query()
	from, err1 := strconv.ParseInt(q.Get("from"), 10, 64)
	max, err2 := strconv.ParseInt(q.Get("max"), 10, 64)
	var gen uint64
	var err3 error
	if g := q.Get("gen"); g != "" {
		gen, err3 = strconv.ParseUint(g, 10, 64)
	}
	if err1 != nil || err2 != nil || err3 != nil {
		writeErr(w, http.StatusBadRequest, errors.New("httpapi: bad from/max/gen"))
		return
	}
	ch, err := src.Segment(id, from, max, gen, q.Get("pin"))
	if err != nil {
		writeErr(w, replicaErrStatus(err), err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set(hdrEpoch, ch.Epoch)
	h.Set(hdrSealed, strconv.FormatBool(ch.Sealed))
	h.Set(hdrGen, strconv.FormatUint(ch.Gen, 10))
	h.Set(hdrTotal, strconv.FormatInt(ch.Total, 10))
	h.Set(hdrCRC, strconv.FormatUint(uint64(ch.CRC32), 10))
	h.Set(hdrNext, strconv.FormatUint(ch.NextID, 10))
	h.Set(hdrNextGen, strconv.FormatUint(ch.NextGen, 10))
	w.WriteHeader(http.StatusOK)
	w.Write(ch.Data)
}

func (s *Server) handleReplicaRelease(w http.ResponseWriter, r *http.Request) {
	src, ok := s.replicaSource(w, r)
	if !ok {
		return
	}
	src.Release(r.URL.Query().Get("pin")) //nolint:errcheck
	writeJSON(w, http.StatusOK, map[string]string{"status": "released"})
}

// PrimaryReplicaStatus is one store's primary-side replication view.
type PrimaryReplicaStatus struct {
	Epoch      string `json:"epoch"`
	Segments   int    `json:"segments"`
	DurableSeg uint64 `json:"durable_seg"`
	DurableOff int64  `json:"durable_off"`
	Pins       int    `json:"pins"`
}

// ReplicaStatusResponse is GET /v1/replica/status from either role.
type ReplicaStatusResponse struct {
	Role    string                          `json:"role"` // "primary" or "replica"
	Stores  map[string]PrimaryReplicaStatus `json:"stores,omitempty"`
	Replica map[string]replica.Status       `json:"replica,omitempty"`
}

func (s *Server) handleReplicaStatus(w http.ResponseWriter, r *http.Request) {
	resp := ReplicaStatusResponse{Role: "primary", Stores: make(map[string]PrimaryReplicaStatus, len(s.replicas))}
	for name, src := range s.replicas {
		st := PrimaryReplicaStatus{Epoch: src.Epoch(), Pins: src.Pins()}
		// Stats gives the segment count without building a manifest
		// (which copies per-segment metadata under the log mutex).
		st.Segments = src.Store().Stats().Segments
		st.DurableSeg, st.DurableOff = src.Store().DurableOffset()
		resp.Stores[name] = st
	}
	writeJSON(w, http.StatusOK, resp)
}

// replicaErrStatus maps source errors onto transport codes the client
// can map back losslessly.
func replicaErrStatus(err error) int {
	switch {
	case errors.Is(err, kvstore.ErrSegmentGone):
		return http.StatusGone
	case errors.Is(err, kvstore.ErrInMemory):
		return http.StatusNotImplemented
	case errors.Is(err, replica.ErrUnknownPin):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

// --- shared read-only KV endpoints (primary + follower) ---

// KVValueResponse answers /v1/kv/get and /v1/kv/has.
type KVValueResponse struct {
	Found bool   `json:"found"`
	Value string `json:"value,omitempty"` // base64
}

// kvKeyParam decodes the base64url ?key= parameter.
func kvKeyParam(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	key, err := base64.URLEncoding.DecodeString(r.URL.Query().Get("key"))
	if err != nil || len(key) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("httpapi: bad key (want base64url)"))
		return nil, false
	}
	return key, true
}

func (s *Server) handleKVGet(w http.ResponseWriter, r *http.Request) {
	st := s.stores[r.URL.Query().Get("store")]
	if st == nil {
		writeErr(w, http.StatusNotFound, errors.New("httpapi: unknown store"))
		return
	}
	key, ok := kvKeyParam(w, r)
	if !ok {
		return
	}
	v, found := st.Get(key)
	writeJSON(w, http.StatusOK, KVValueResponse{Found: found, Value: b64(v)})
}

func (s *Server) handleKVHas(w http.ResponseWriter, r *http.Request) {
	st := s.stores[r.URL.Query().Get("store")]
	if st == nil {
		writeErr(w, http.StatusNotFound, errors.New("httpapi: unknown store"))
		return
	}
	key, ok := kvKeyParam(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, KVValueResponse{Found: st.Has(key)})
}

// --- follower-side server ---

// ReplicaServer is the HTTP surface of a follower daemon: read-only KV
// and revocation lookups against the local replicas, replication
// status, and promotion. Writes are rejected until promotion.
type ReplicaServer struct {
	followers map[string]*replica.Follower
	mux       *http.ServeMux
}

// NewReplicaServer builds the follower handler tree over the given
// followers (keyed by store name, e.g. "provider" and "bank").
func NewReplicaServer(followers map[string]*replica.Follower) *ReplicaServer {
	rs := &ReplicaServer{followers: followers, mux: http.NewServeMux()}
	rs.mux.HandleFunc("GET /v1/kv/get", rs.handleGet)
	rs.mux.HandleFunc("GET /v1/kv/has", rs.handleHas)
	rs.mux.HandleFunc("POST /v1/kv/put", rs.handlePut)
	rs.mux.HandleFunc("GET /v1/stats", rs.handleStats)
	rs.mux.HandleFunc("GET /v1/replica/status", rs.handleStatus)
	rs.mux.HandleFunc("POST /v1/replica/promote", rs.handlePromote)
	rs.mux.HandleFunc("GET /v1/revocation/contains", rs.handleContains)
	return rs
}

// ServeHTTP implements http.Handler.
func (rs *ReplicaServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { rs.mux.ServeHTTP(w, r) }

func (rs *ReplicaServer) follower(w http.ResponseWriter, r *http.Request) (*replica.Follower, bool) {
	name := r.URL.Query().Get("store")
	f := rs.followers[name]
	if f == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("httpapi: no replica for store %q", name))
		return nil, false
	}
	return f, true
}

func (rs *ReplicaServer) handleGet(w http.ResponseWriter, r *http.Request) {
	f, ok := rs.follower(w, r)
	if !ok {
		return
	}
	key, ok := kvKeyParam(w, r)
	if !ok {
		return
	}
	v, found := f.Get(key)
	writeJSON(w, http.StatusOK, KVValueResponse{Found: found, Value: b64(v)})
}

func (rs *ReplicaServer) handleHas(w http.ResponseWriter, r *http.Request) {
	f, ok := rs.follower(w, r)
	if !ok {
		return
	}
	key, ok := kvKeyParam(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, KVValueResponse{Found: f.Has(key)})
}

// KVPutRequest is a follower-side write attempt (rejected until the
// follower is promoted).
type KVPutRequest struct {
	Key   string `json:"key"`   // base64
	Value string `json:"value"` // base64
}

func (rs *ReplicaServer) handlePut(w http.ResponseWriter, r *http.Request) {
	f, ok := rs.follower(w, r)
	if !ok {
		return
	}
	var req KVPutRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	key, err1 := unb64(req.Key)
	val, err2 := unb64(req.Value)
	if err1 != nil || err2 != nil {
		writeErr(w, http.StatusBadRequest, errors.New("httpapi: bad base64 field"))
		return
	}
	if err := f.Put(key, val); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, replica.ErrReadOnly) {
			status = http.StatusForbidden
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (rs *ReplicaServer) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{Stores: make(map[string]kvstore.Stats, len(rs.followers))}
	for name, f := range rs.followers {
		resp.Stores[name] = f.Stats()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rs *ReplicaServer) handleStatus(w http.ResponseWriter, r *http.Request) {
	resp := ReplicaStatusResponse{Role: "replica", Replica: make(map[string]replica.Status, len(rs.followers))}
	for name, f := range rs.followers {
		resp.Replica[name] = f.Status()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rs *ReplicaServer) handlePromote(w http.ResponseWriter, r *http.Request) {
	for _, f := range rs.followers {
		f.Promote()
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "promoted"})
}

// handleContains answers revocation lookups from the replicated
// provider store: exact (not Bloom) containment via the store key the
// revocation list uses on the primary.
func (rs *ReplicaServer) handleContains(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("store")
	if name == "" {
		name = "provider"
	}
	f := rs.followers[name]
	if f == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("httpapi: no replica for store %q", name))
		return
	}
	raw, err := base64.URLEncoding.DecodeString(r.URL.Query().Get("serial"))
	var serial license.Serial
	if err != nil || len(raw) != len(serial) {
		writeErr(w, http.StatusBadRequest, errors.New("httpapi: bad serial (want base64url of exact length)"))
		return
	}
	copy(serial[:], raw)
	writeJSON(w, http.StatusOK, KVValueResponse{Found: f.Has(revocation.StoreKey(serial))})
}

// --- client SDK ---

// ReplicaManifest fetches a store's segment manifest; pin=true leases
// the sealed set against compaction until ReplicaRelease (or TTL).
func (c *Client) ReplicaManifest(store string, pin bool) (*replica.Manifest, error) {
	p := "/v1/replica/manifest?store=" + url.QueryEscape(store)
	if pin {
		p += "&pin=1"
	}
	var m replica.Manifest
	if err := c.get(p, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// ReplicaSegment fetches raw segment bytes; see replica.Fetcher.
func (c *Client) ReplicaSegment(store string, id uint64, from, max int64, wantGen uint64, pinID string) (*replica.Chunk, error) {
	u := fmt.Sprintf("%s/v1/replica/segment/%d?store=%s&from=%d&max=%d&gen=%d",
		c.BaseURL, id, url.QueryEscape(store), from, max, wantGen)
	if pinID != "" {
		u += "&pin=" + url.QueryEscape(pinID)
	}
	resp, err := c.HTTP.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return nil, kvstore.ErrSegmentGone
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return nil, replica.ErrUnknownPin
	default:
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err == nil && eb.Error != "" {
			return nil, fmt.Errorf("httpapi: server: %s", eb.Error)
		}
		return nil, fmt.Errorf("httpapi: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	h := resp.Header
	sealed, _ := strconv.ParseBool(h.Get(hdrSealed))
	gen, err1 := strconv.ParseUint(h.Get(hdrGen), 10, 64)
	total, err2 := strconv.ParseInt(h.Get(hdrTotal), 10, 64)
	crc, err3 := strconv.ParseUint(h.Get(hdrCRC), 10, 32)
	next, err4 := strconv.ParseUint(h.Get(hdrNext), 10, 64)
	nextGen, err5 := strconv.ParseUint(h.Get(hdrNextGen), 10, 64)
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
		return nil, errors.New("httpapi: malformed replica headers")
	}
	return &replica.Chunk{
		Epoch: h.Get(hdrEpoch),
		SegmentChunk: kvstore.SegmentChunk{
			ID:      id,
			From:    from,
			Data:    data,
			Sealed:  sealed,
			Total:   total,
			Gen:     gen,
			CRC32:   uint32(crc),
			NextID:  next,
			NextGen: nextGen,
		},
	}, nil
}

// ReplicaRelease ends a pin lease.
func (c *Client) ReplicaRelease(store, pinID string) error {
	return c.post("/v1/replica/release?store="+url.QueryEscape(store)+"&pin="+url.QueryEscape(pinID), struct{}{}, nil)
}

// ReplicaStatus reads either role's replication status.
func (c *Client) ReplicaStatus() (*ReplicaStatusResponse, error) {
	var resp ReplicaStatusResponse
	if err := c.get("/v1/replica/status", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ReplicaPromote promotes a follower daemon's stores to writable.
func (c *Client) ReplicaPromote() error {
	return c.post("/v1/replica/promote", struct{}{}, nil)
}

// KVGet reads one key from a named store (primary or replica daemon).
func (c *Client) KVGet(store string, key []byte) ([]byte, bool, error) {
	var resp KVValueResponse
	p := "/v1/kv/get?store=" + url.QueryEscape(store) + "&key=" + base64.URLEncoding.EncodeToString(key)
	if err := c.get(p, &resp); err != nil {
		return nil, false, err
	}
	if !resp.Found {
		return nil, false, nil
	}
	v, err := unb64(resp.Value)
	return v, true, err
}

// KVHas checks one key on a named store.
func (c *Client) KVHas(store string, key []byte) (bool, error) {
	var resp KVValueResponse
	p := "/v1/kv/has?store=" + url.QueryEscape(store) + "&key=" + base64.URLEncoding.EncodeToString(key)
	if err := c.get(p, &resp); err != nil {
		return false, err
	}
	return resp.Found, nil
}

// KVPut attempts a write on a replica daemon (rejected until promoted).
func (c *Client) KVPut(store string, key, val []byte) error {
	return c.post("/v1/kv/put?store="+url.QueryEscape(store), KVPutRequest{Key: b64(key), Value: b64(val)}, nil)
}

// RevocationContains asks a replica for exact revocation containment.
func (c *Client) RevocationContains(serial license.Serial) (bool, error) {
	var resp KVValueResponse
	p := "/v1/revocation/contains?serial=" + base64.URLEncoding.EncodeToString(serial[:])
	if err := c.get(p, &resp); err != nil {
		return false, err
	}
	return resp.Found, nil
}

// replicaFetcher adapts the client SDK to replica.Fetcher for one store.
type replicaFetcher struct {
	c     *Client
	store string
}

// NewReplicaFetcher returns the transport a replica.Follower uses to
// tail `store` on the daemon at client's BaseURL.
func NewReplicaFetcher(c *Client, store string) replica.Fetcher {
	return replicaFetcher{c: c, store: store}
}

func (rf replicaFetcher) Manifest(pin bool) (*replica.Manifest, error) {
	return rf.c.ReplicaManifest(rf.store, pin)
}

func (rf replicaFetcher) Segment(id uint64, from, max int64, wantGen uint64, pinID string) (*replica.Chunk, error) {
	return rf.c.ReplicaSegment(rf.store, id, from, max, wantGen, pinID)
}

func (rf replicaFetcher) Release(pinID string) error {
	return rf.c.ReplicaRelease(rf.store, pinID)
}
