package httpapi

// Replication transport: the primary side serves a store's WAL segments
// to followers, the follower side serves read-only traffic plus
// replication status. Segment bytes travel as raw octet-stream bodies
// with identity metadata in X-Replica-* headers — they are CRC-framed
// log records, so JSON/base64 framing would only add bulk.
//
// Both roles expose the endpoints on /v1 (bare JSON) and /v2
// (envelope, tiered auth); promotion and resync are /v2-only async
// operations. A compaction-invalidated segment read answers 410 Gone,
// which the client maps back to kvstore.ErrSegmentGone so the
// follower's snapshot fallback triggers exactly as it does in-process.

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"p2drm/internal/kvstore"
	"p2drm/internal/license"
	"p2drm/internal/ops"
	"p2drm/internal/replica"
	"p2drm/internal/revocation"
)

// WithReplicaSource registers a replication source under name (matching
// the WithStoreStats name so followers address stores consistently).
// Call before serving starts.
func (s *Server) WithReplicaSource(name string, src *replica.Source) *Server {
	if s.replicas == nil {
		s.replicas = make(map[string]*replica.Source)
	}
	s.replicas[name] = src
	return s
}

func (s *Server) replicaSource(r *http.Request) (*replica.Source, *apiError) {
	name := r.URL.Query().Get("store")
	src := s.replicas[name]
	if src == nil {
		return nil, errNotFound(fmt.Errorf("httpapi: no replica source %q", name))
	}
	return src, nil
}

func (s *Server) epReplicaManifest(r *http.Request) (any, *apiError) {
	src, apiErr := s.replicaSource(r)
	if apiErr != nil {
		return nil, apiErr
	}
	m, err := src.Manifest(r.URL.Query().Get("pin") == "1")
	if err != nil {
		return nil, errStatus(replicaErrStatus(err), err)
	}
	return m, nil
}

// Segment identity/continuation headers; the body is raw log bytes.
const (
	hdrEpoch   = "X-Replica-Epoch"
	hdrSealed  = "X-Replica-Sealed"
	hdrGen     = "X-Replica-Gen"
	hdrTotal   = "X-Replica-Total"
	hdrCRC     = "X-Replica-Crc"
	hdrNext    = "X-Replica-Next"
	hdrNextGen = "X-Replica-Next-Gen"
	hdrActive  = "X-Replica-Active"
)

// serveReplicaSegment streams one segment chunk; shared raw handler for
// both API versions (errFn shapes the failure body per surface).
func (s *Server) serveReplicaSegment(w http.ResponseWriter, r *http.Request, errFn func(http.ResponseWriter, *apiError)) {
	src, apiErr := s.replicaSource(r)
	if apiErr != nil {
		errFn(w, apiErr)
		return
	}
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		errFn(w, errBadRequest(fmt.Errorf("httpapi: bad segment id: %w", err)))
		return
	}
	q := r.URL.Query()
	from, err1 := strconv.ParseInt(q.Get("from"), 10, 64)
	max, err2 := strconv.ParseInt(q.Get("max"), 10, 64)
	var gen uint64
	var err3 error
	if g := q.Get("gen"); g != "" {
		gen, err3 = strconv.ParseUint(g, 10, 64)
	}
	if err1 != nil || err2 != nil || err3 != nil {
		errFn(w, errBadRequest(errors.New("httpapi: bad from/max/gen")))
		return
	}
	ch, err := src.Segment(id, from, max, gen, q.Get("pin"))
	if err != nil {
		errFn(w, errStatus(replicaErrStatus(err), err))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set(hdrEpoch, ch.Epoch)
	h.Set(hdrSealed, strconv.FormatBool(ch.Sealed))
	h.Set(hdrGen, strconv.FormatUint(ch.Gen, 10))
	h.Set(hdrTotal, strconv.FormatInt(ch.Total, 10))
	h.Set(hdrCRC, strconv.FormatUint(uint64(ch.CRC32), 10))
	h.Set(hdrNext, strconv.FormatUint(ch.NextID, 10))
	h.Set(hdrNextGen, strconv.FormatUint(ch.NextGen, 10))
	h.Set(hdrActive, strconv.FormatUint(ch.ActiveID, 10))
	w.WriteHeader(http.StatusOK)
	w.Write(ch.Data)
}

func (s *Server) handleReplicaSegment(w http.ResponseWriter, r *http.Request) {
	s.serveReplicaSegment(w, r, func(w http.ResponseWriter, e *apiError) { writeErr(w, e.status, e) })
}

func (s *Server) epReplicaRelease(r *http.Request) (any, *apiError) {
	src, apiErr := s.replicaSource(r)
	if apiErr != nil {
		return nil, apiErr
	}
	src.Release(r.URL.Query().Get("pin")) //nolint:errcheck
	return map[string]string{"status": "released"}, nil
}

// PrimaryReplicaStatus is one store's primary-side replication view.
type PrimaryReplicaStatus struct {
	Epoch      string `json:"epoch"`
	Segments   int    `json:"segments"`
	DurableSeg uint64 `json:"durable_seg"`
	DurableOff int64  `json:"durable_off"`
	Pins       int    `json:"pins"`
}

// ReplicaStatusResponse is the replica/status payload from either role.
type ReplicaStatusResponse struct {
	Role    string                          `json:"role"` // "primary" or "replica"
	Stores  map[string]PrimaryReplicaStatus `json:"stores,omitempty"`
	Replica map[string]replica.Status       `json:"replica,omitempty"`
}

func (s *Server) epReplicaStatus(r *http.Request) (any, *apiError) {
	resp := ReplicaStatusResponse{Role: "primary", Stores: make(map[string]PrimaryReplicaStatus, len(s.replicas))}
	for name, src := range s.replicas {
		st := PrimaryReplicaStatus{Epoch: src.Epoch(), Pins: src.Pins()}
		// Stats gives the segment count without building a manifest
		// (which copies per-segment metadata under the log mutex).
		st.Segments = src.Store().Stats().Segments
		st.DurableSeg, st.DurableOff = src.Store().DurableOffset()
		resp.Stores[name] = st
	}
	return resp, nil
}

// replicaErrStatus maps source errors onto transport codes the client
// can map back losslessly.
func replicaErrStatus(err error) int {
	switch {
	case errors.Is(err, kvstore.ErrSegmentGone):
		return http.StatusGone
	case errors.Is(err, kvstore.ErrInMemory):
		return http.StatusNotImplemented
	case errors.Is(err, replica.ErrUnknownPin):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

// --- shared read-only KV endpoints (primary + follower) ---

// KVValueResponse answers kv/get and kv/has.
type KVValueResponse struct {
	Found bool   `json:"found"`
	Value string `json:"value,omitempty"` // base64
}

// kvKeyParam decodes the base64url ?key= parameter.
func kvKeyParam(r *http.Request) ([]byte, *apiError) {
	key, err := base64.URLEncoding.DecodeString(r.URL.Query().Get("key"))
	if err != nil || len(key) == 0 {
		return nil, errBadRequest(errors.New("httpapi: bad key (want base64url)"))
	}
	return key, nil
}

func (s *Server) epKVGet(r *http.Request) (any, *apiError) {
	st := s.stores[r.URL.Query().Get("store")]
	if st == nil {
		return nil, errNotFound(errors.New("httpapi: unknown store"))
	}
	key, apiErr := kvKeyParam(r)
	if apiErr != nil {
		return nil, apiErr
	}
	v, found := st.Get(key)
	return KVValueResponse{Found: found, Value: b64(v)}, nil
}

func (s *Server) epKVHas(r *http.Request) (any, *apiError) {
	st := s.stores[r.URL.Query().Get("store")]
	if st == nil {
		return nil, errNotFound(errors.New("httpapi: unknown store"))
	}
	key, apiErr := kvKeyParam(r)
	if apiErr != nil {
		return nil, apiErr
	}
	return KVValueResponse{Found: st.Has(key)}, nil
}

// --- follower-side server ---

// ReplicaServer is the HTTP surface of a follower daemon: read-only KV
// and revocation lookups against the local replicas, replication
// status, and async promotion/resync operations. Writes are rejected
// until promotion.
type ReplicaServer struct {
	api
	followers map[string]*replica.Follower
}

// NewReplicaServer builds the follower handler tree over the given
// followers (keyed by store name, e.g. "provider" and "bank").
func NewReplicaServer(followers map[string]*replica.Follower) *ReplicaServer {
	rs := &ReplicaServer{followers: followers, api: newAPI()}
	rs.legacy("GET", "/v1/kv/get", TierGuest, rs.epGet)
	rs.legacy("GET", "/v1/kv/has", TierGuest, rs.epHas)
	rs.legacy("POST", "/v1/kv/put", TierUser, rs.epPut)
	rs.legacy("GET", "/v1/stats", TierGuest, rs.epStats)
	rs.legacy("GET", "/v1/replica/status", TierGuest, rs.epStatus)
	rs.legacy("POST", "/v1/replica/promote", TierAdmin, rs.epPromoteSync)
	rs.legacy("GET", "/v1/revocation/contains", TierGuest, rs.epContains)

	rs.v2("GET", "/v2/kv/get", TierGuest, rs.epGet)
	rs.v2("GET", "/v2/kv/has", TierGuest, rs.epHas)
	rs.v2("POST", "/v2/kv/put", TierUser, rs.epPut)
	rs.v2("GET", "/v2/stats", TierGuest, rs.epStats)
	rs.v2("GET", "/v2/replica/status", TierGuest, rs.epStatus)
	rs.v2("GET", "/v2/revocation/contains", TierGuest, rs.epContains)
	rs.v2raw("POST", "/v2/replica/promote", TierAdmin, KindAsync, rs.handlePromoteV2)
	rs.v2raw("POST", "/v2/replica/resync", TierAdmin, KindAsync, rs.handleResyncV2)
	rs.registerOpsRoutes()
	rs.registerObsRoutes()
	for name, f := range followers {
		registerFollowerMetrics(rs.obs.Reg, name, f)
		registerFollowerHealth(rs.obs.Health, name, f)
	}
	return rs
}

// WithOps replaces the default volatile operations registry with reg —
// typically a kvstore-backed one so operations survive restarts. Call
// before serving starts.
func (rs *ReplicaServer) WithOps(reg *ops.Registry) *ReplicaServer {
	rs.ops = reg
	return rs
}

// WithAuth installs the access policy (see Auth). Call before serving
// starts; the zero policy leaves the API open.
func (rs *ReplicaServer) WithAuth(a Auth) *ReplicaServer {
	rs.auth = a
	return rs
}

// ResumeOps adopts operations persisted by a previous process. Neither
// follower operation is idempotent enough to re-run blindly (a promote
// may have half-applied, a resync restarts anyway on next divergence),
// so both kinds are marked aborted; the method exists so a restarted
// follower daemon surfaces them rather than losing them.
func (rs *ReplicaServer) ResumeOps() (resumed, aborted int) {
	return rs.ops.Resume()
}

// ServeHTTP implements http.Handler.
func (rs *ReplicaServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { rs.api.serveHTTP(w, r) }

func (rs *ReplicaServer) follower(r *http.Request) (*replica.Follower, *apiError) {
	name := r.URL.Query().Get("store")
	f := rs.followers[name]
	if f == nil {
		return nil, errNotFound(fmt.Errorf("httpapi: no replica for store %q", name))
	}
	return f, nil
}

func (rs *ReplicaServer) epGet(r *http.Request) (any, *apiError) {
	f, apiErr := rs.follower(r)
	if apiErr != nil {
		return nil, apiErr
	}
	key, apiErr := kvKeyParam(r)
	if apiErr != nil {
		return nil, apiErr
	}
	v, found := f.Get(key)
	return KVValueResponse{Found: found, Value: b64(v)}, nil
}

func (rs *ReplicaServer) epHas(r *http.Request) (any, *apiError) {
	f, apiErr := rs.follower(r)
	if apiErr != nil {
		return nil, apiErr
	}
	key, apiErr := kvKeyParam(r)
	if apiErr != nil {
		return nil, apiErr
	}
	return KVValueResponse{Found: f.Has(key)}, nil
}

// KVPutRequest is a follower-side write attempt (rejected until the
// follower is promoted).
type KVPutRequest struct {
	Key   string `json:"key"`   // base64
	Value string `json:"value"` // base64
}

func (rs *ReplicaServer) epPut(r *http.Request) (any, *apiError) {
	f, apiErr := rs.follower(r)
	if apiErr != nil {
		return nil, apiErr
	}
	var req KVPutRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, errBadRequest(err)
	}
	key, err1 := unb64(req.Key)
	val, err2 := unb64(req.Value)
	if err1 != nil || err2 != nil {
		return nil, errBadRequest(errors.New("httpapi: bad base64 field"))
	}
	if err := f.Put(key, val); err != nil {
		if errors.Is(err, replica.ErrReadOnly) {
			return nil, &apiError{status: http.StatusForbidden, kind: "read-only", msg: err.Error()}
		}
		return nil, errInternal(err)
	}
	return map[string]string{"status": "ok"}, nil
}

func (rs *ReplicaServer) epStats(r *http.Request) (any, *apiError) {
	resp := StatsResponse{Stores: make(map[string]kvstore.Stats, len(rs.followers))}
	for name, f := range rs.followers {
		resp.Stores[name] = f.Stats()
	}
	return resp, nil
}

func (rs *ReplicaServer) epStatus(r *http.Request) (any, *apiError) {
	resp := ReplicaStatusResponse{Role: "replica", Replica: make(map[string]replica.Status, len(rs.followers))}
	for name, f := range rs.followers {
		resp.Replica[name] = f.Status()
	}
	return resp, nil
}

// epPromoteSync is the /v1 promote: immediate, all stores.
func (rs *ReplicaServer) epPromoteSync(r *http.Request) (any, *apiError) {
	for _, f := range rs.followers {
		f.Promote()
	}
	return map[string]string{"status": "promoted"}, nil
}

// PromoteResult reports the post-promotion role per store.
type PromoteResult struct {
	Promoted []string `json:"promoted"`
}

// handlePromoteV2 promotes every follower as a background operation:
// promotion waits for in-flight tail appends to drain, which on a busy
// follower is not bounded-latency work.
func (rs *ReplicaServer) handlePromoteV2(w http.ResponseWriter, r *http.Request) {
	rs.startOperation(w, "promote", "promote follower stores to writable", nil,
		func(ctx context.Context, h *ops.Handle) (any, error) {
			var res PromoteResult
			total := int64(len(rs.followers))
			for name, f := range rs.followers {
				f.Promote()
				res.Promoted = append(res.Promoted, name)
				h.Progress(int64(len(res.Promoted)), total, "promoted "+name)
			}
			return res, nil
		})
}

// ResyncResult reports per-store resync outcomes.
type ResyncResult struct {
	Resynced []string          `json:"resynced"`
	Errors   map[string]string `json:"errors,omitempty"`
}

// handleResyncV2 forces a full snapshot re-bootstrap of each follower
// (?store=NAME limits it to one) as a background operation.
func (rs *ReplicaServer) handleResyncV2(w http.ResponseWriter, r *http.Request) {
	only := r.URL.Query().Get("store")
	if only != "" && rs.followers[only] == nil {
		writeEnvErr(w, errNotFound(fmt.Errorf("httpapi: no replica for store %q", only)))
		return
	}
	rs.startOperation(w, "resync", "snapshot re-bootstrap of follower stores",
		map[string]string{"store": only},
		func(ctx context.Context, h *ops.Handle) (any, error) {
			res := ResyncResult{Errors: make(map[string]string)}
			var done, total int64
			for name := range rs.followers {
				if only == "" || name == only {
					total++
				}
			}
			for name, f := range rs.followers {
				if only != "" && name != only {
					continue
				}
				if err := f.Resync(ctx); err != nil {
					res.Errors[name] = err.Error()
				} else {
					res.Resynced = append(res.Resynced, name)
				}
				done++
				h.Progress(done, total, "resynced "+name)
			}
			if len(res.Errors) == 0 {
				res.Errors = nil
			} else if len(res.Resynced) == 0 {
				return nil, fmt.Errorf("httpapi: resync failed for all %d stores", len(res.Errors))
			}
			return res, nil
		})
}

// epContains answers revocation lookups from the replicated provider
// store: exact (not Bloom) containment via the store key the revocation
// list uses on the primary.
func (rs *ReplicaServer) epContains(r *http.Request) (any, *apiError) {
	name := r.URL.Query().Get("store")
	if name == "" {
		name = "provider"
	}
	f := rs.followers[name]
	if f == nil {
		return nil, errNotFound(fmt.Errorf("httpapi: no replica for store %q", name))
	}
	raw, err := base64.URLEncoding.DecodeString(r.URL.Query().Get("serial"))
	var serial license.Serial
	if err != nil || len(raw) != len(serial) {
		return nil, errBadRequest(errors.New("httpapi: bad serial (want base64url of exact length)"))
	}
	copy(serial[:], raw)
	return KVValueResponse{Found: f.Has(revocation.StoreKey(serial))}, nil
}

// --- client SDK ---

// ReplicaManifest fetches a store's segment manifest; pin=true leases
// the sealed set against compaction until ReplicaRelease (or TTL).
func (c *Client) ReplicaManifest(store string, pin bool) (*replica.Manifest, error) {
	p := "/v1/replica/manifest?store=" + url.QueryEscape(store)
	if pin {
		p += "&pin=1"
	}
	var m replica.Manifest
	if err := c.get(p, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// ReplicaSegment fetches raw segment bytes; see replica.Fetcher.
func (c *Client) ReplicaSegment(store string, id uint64, from, max int64, wantGen uint64, pinID string) (*replica.Chunk, error) {
	p := fmt.Sprintf("/v1/replica/segment/%d?store=%s&from=%d&max=%d&gen=%d",
		id, url.QueryEscape(store), from, max, wantGen)
	if pinID != "" {
		p += "&pin=" + url.QueryEscape(pinID)
	}
	req, err := c.newReq("GET", p, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return nil, kvstore.ErrSegmentGone
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return nil, replica.ErrUnknownPin
	default:
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err == nil && eb.Error != "" {
			return nil, fmt.Errorf("httpapi: server: %s", eb.Error)
		}
		return nil, fmt.Errorf("httpapi: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	h := resp.Header
	sealed, _ := strconv.ParseBool(h.Get(hdrSealed))
	gen, err1 := strconv.ParseUint(h.Get(hdrGen), 10, 64)
	total, err2 := strconv.ParseInt(h.Get(hdrTotal), 10, 64)
	crc, err3 := strconv.ParseUint(h.Get(hdrCRC), 10, 32)
	next, err4 := strconv.ParseUint(h.Get(hdrNext), 10, 64)
	nextGen, err5 := strconv.ParseUint(h.Get(hdrNextGen), 10, 64)
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
		return nil, errors.New("httpapi: malformed replica headers")
	}
	// Absent on pre-lag-reporting primaries; zero means "unknown" and the
	// follower reports LagSegments -1.
	var active uint64
	if v := h.Get(hdrActive); v != "" {
		if active, err = strconv.ParseUint(v, 10, 64); err != nil {
			return nil, errors.New("httpapi: malformed replica headers")
		}
	}
	return &replica.Chunk{
		Epoch: h.Get(hdrEpoch),
		SegmentChunk: kvstore.SegmentChunk{
			ID:       id,
			From:     from,
			Data:     data,
			Sealed:   sealed,
			Total:    total,
			Gen:      gen,
			CRC32:    uint32(crc),
			NextID:   next,
			NextGen:  nextGen,
			ActiveID: active,
		},
	}, nil
}

// ReplicaRelease ends a pin lease.
func (c *Client) ReplicaRelease(store, pinID string) error {
	return c.post("/v1/replica/release?store="+url.QueryEscape(store)+"&pin="+url.QueryEscape(pinID), struct{}{}, nil)
}

// ReplicaStatus reads either role's replication status.
func (c *Client) ReplicaStatus() (*ReplicaStatusResponse, error) {
	var resp ReplicaStatusResponse
	if err := c.get("/v1/replica/status", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ReplicaPromote promotes a follower daemon's stores to writable
// (legacy /v1 synchronous form; see PromoteAsync).
func (c *Client) ReplicaPromote() error {
	return c.post("/v1/replica/promote", struct{}{}, nil)
}

// KVGet reads one key from a named store (primary or replica daemon).
func (c *Client) KVGet(store string, key []byte) ([]byte, bool, error) {
	var resp KVValueResponse
	p := "/v1/kv/get?store=" + url.QueryEscape(store) + "&key=" + base64.URLEncoding.EncodeToString(key)
	if err := c.get(p, &resp); err != nil {
		return nil, false, err
	}
	if !resp.Found {
		return nil, false, nil
	}
	v, err := unb64(resp.Value)
	return v, true, err
}

// KVHas checks one key on a named store.
func (c *Client) KVHas(store string, key []byte) (bool, error) {
	var resp KVValueResponse
	p := "/v1/kv/has?store=" + url.QueryEscape(store) + "&key=" + base64.URLEncoding.EncodeToString(key)
	if err := c.get(p, &resp); err != nil {
		return false, err
	}
	return resp.Found, nil
}

// KVPut attempts a write on a replica daemon (rejected until promoted).
func (c *Client) KVPut(store string, key, val []byte) error {
	return c.post("/v1/kv/put?store="+url.QueryEscape(store), KVPutRequest{Key: b64(key), Value: b64(val)}, nil)
}

// RevocationContains asks a replica for exact revocation containment.
func (c *Client) RevocationContains(serial license.Serial) (bool, error) {
	var resp KVValueResponse
	p := "/v1/revocation/contains?serial=" + base64.URLEncoding.EncodeToString(serial[:])
	if err := c.get(p, &resp); err != nil {
		return false, err
	}
	return resp.Found, nil
}

// replicaFetcher adapts the client SDK to replica.Fetcher for one store.
type replicaFetcher struct {
	c     *Client
	store string
}

// NewReplicaFetcher returns the transport a replica.Follower uses to
// tail `store` on the daemon at client's BaseURL.
func NewReplicaFetcher(c *Client, store string) replica.Fetcher {
	return replicaFetcher{c: c, store: store}
}

func (rf replicaFetcher) Manifest(pin bool) (*replica.Manifest, error) {
	return rf.c.ReplicaManifest(rf.store, pin)
}

func (rf replicaFetcher) Segment(id uint64, from, max int64, wantGen uint64, pinID string) (*replica.Chunk, error) {
	return rf.c.ReplicaSegment(rf.store, id, from, max, wantGen, pinID)
}

func (rf replicaFetcher) Release(pinID string) error {
	return rf.c.ReplicaRelease(rf.store, pinID)
}
