//go:build !linux

package httpapi

import "net"

// unixPeerUID is unavailable off Linux; callers fall back to token
// auth.
func unixPeerUID(c *net.UnixConn) (uint32, error) {
	return 0, errNoPeerCred
}
