package httpapi

// Client-side /v2 envelope support: typed envelope decoding, APIError
// with the server's error kind, and operation polling helpers.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"p2drm/internal/license"
	"p2drm/internal/ops"
)

// Envelope is the decoded /v2 response frame; Result stays raw until
// the caller picks a type.
type Envelope struct {
	Type       string          `json:"type"`
	Status     string          `json:"status"`
	StatusCode int             `json:"status-code"`
	Operation  string          `json:"operation,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// APIError is a /v2 error envelope surfaced as a Go error, keeping the
// machine-readable kind so callers can switch on it.
type APIError struct {
	StatusCode int
	Kind       string
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("httpapi: server: %s (%s, status %d)", e.Message, e.Kind, e.StatusCode)
}

// doV2 issues one /v2 request with the bearer token attached and
// decodes the envelope; error envelopes come back as *APIError.
func (c *Client) doV2(method, path string, in any) (*Envelope, error) {
	var body *bytes.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return nil, err
		}
		body = bytes.NewReader(b)
	} else {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var env Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return nil, fmt.Errorf("httpapi: bad envelope (status %d): %w", resp.StatusCode, err)
	}
	if env.Type == "error" {
		var er errorResult
		if err := json.Unmarshal(env.Result, &er); err != nil {
			er.Message = "malformed error result"
		}
		return nil, &APIError{StatusCode: env.StatusCode, Kind: er.Kind, Message: er.Message}
	}
	return &env, nil
}

// getV2 decodes a sync envelope's result into out.
func (c *Client) getV2(path string, out any) error {
	env, err := c.doV2("GET", path, nil)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(env.Result, out)
}

// postV2 posts in and decodes a sync envelope's result into out.
func (c *Client) postV2(path string, in, out any) error {
	env, err := c.doV2("POST", path, in)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(env.Result, out)
}

// postAsyncV2 posts in and returns the spawned operation snapshot.
func (c *Client) postAsyncV2(path string, in any) (*ops.Operation, error) {
	env, err := c.doV2("POST", path, in)
	if err != nil {
		return nil, err
	}
	if env.Type != "async" {
		return nil, fmt.Errorf("httpapi: expected async envelope, got %q", env.Type)
	}
	var op ops.Operation
	if err := json.Unmarshal(env.Result, &op); err != nil {
		return nil, err
	}
	return &op, nil
}

// Operation polls one operation by ID.
func (c *Client) Operation(id string) (*ops.Operation, error) {
	var op ops.Operation
	if err := c.getV2(OperationURL(id), &op); err != nil {
		return nil, err
	}
	return &op, nil
}

// Operations lists the daemon's operations, newest first.
func (c *Client) Operations() ([]ops.Operation, error) {
	var resp OperationsResponse
	if err := c.getV2("/v2/operations", &resp); err != nil {
		return nil, err
	}
	return resp.Operations, nil
}

// DeleteOperation removes a terminal operation from the registry.
func (c *Client) DeleteOperation(id string) error {
	env, err := c.doV2("DELETE", OperationURL(id), nil)
	_ = env
	return err
}

// WaitOperation polls an operation every poll interval until it reaches
// a terminal status or ctx expires. A zero poll defaults to 50ms.
func (c *Client) WaitOperation(ctx context.Context, id string, poll time.Duration) (*ops.Operation, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		op, err := c.Operation(id)
		if err != nil {
			return nil, err
		}
		if op.Status.Terminal() {
			return op, nil
		}
		select {
		case <-ctx.Done():
			return op, ctx.Err()
		case <-t.C:
		}
	}
}

// OperationResult decodes a terminal operation's result into out,
// surfacing failed/aborted operations as errors.
func OperationResult(op *ops.Operation, out any) error {
	switch op.Status {
	case ops.StatusDone:
	case ops.StatusError, ops.StatusAborted:
		return fmt.Errorf("httpapi: operation %s %s: %s", op.ID, op.Status, op.Error)
	default:
		return fmt.Errorf("httpapi: operation %s still %s", op.ID, op.Status)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(op.Result, out)
}

// --- typed /v2 helpers ---

// CatalogV2 lists items via the enveloped surface.
func (c *Client) CatalogV2() ([]CatalogEntry, error) {
	var out []CatalogEntry
	return out, c.getV2("/v2/catalog", &out)
}

// StatsV2 fetches kvstore statistics via the enveloped surface.
func (c *Client) StatsV2() (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.getV2("/v2/stats", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// CompactStore starts a full compaction of a named store and returns
// the operation to poll (admin tier).
func (c *Client) CompactStore(store string) (*ops.Operation, error) {
	return c.postAsyncV2("/v2/compact?store="+url.QueryEscape(store), nil)
}

// RebuildRevocationFilter starts a revocation bloom rebuild and returns
// the operation to poll (admin tier).
func (c *Client) RebuildRevocationFilter() (*ops.Operation, error) {
	return c.postAsyncV2("/v2/revocation/rebuild", nil)
}

// PurchaseBatchAsync starts a bulk issuance operation and returns it
// without waiting; poll with WaitOperation and decode the result with
// OperationResult into a BatchPurchaseResponse.
func (c *Client) PurchaseBatchAsync(items []BatchPurchase) (*ops.Operation, error) {
	return c.postAsyncV2("/v2/purchase/batch", BatchPurchaseRequest{Purchases: encodePurchases(items)})
}

// PurchaseBatchV2 buys several licenses through the async /v2 flow,
// blocking until the operation settles: start, poll, decode. Outcome
// mapping matches Client.PurchaseBatch.
func (c *Client) PurchaseBatchV2(ctx context.Context, items []BatchPurchase) ([]*license.Personalized, []error, error) {
	op, err := c.PurchaseBatchAsync(items)
	if err != nil {
		return nil, nil, err
	}
	op, err = c.WaitOperation(ctx, op.ID, 0)
	if err != nil {
		return nil, nil, err
	}
	var resp BatchPurchaseResponse
	if err := OperationResult(op, &resp); err != nil {
		return nil, nil, err
	}
	return decodePurchaseResults(resp, len(items))
}

// PromoteAsync starts follower promotion on a replica daemon and
// returns the operation to poll (admin tier).
func (c *Client) PromoteAsync() (*ops.Operation, error) {
	return c.postAsyncV2("/v2/replica/promote", nil)
}

// ResyncReplica starts a snapshot re-bootstrap on a replica daemon
// (store == "" resyncs all stores) and returns the operation to poll
// (admin tier).
func (c *Client) ResyncReplica(store string) (*ops.Operation, error) {
	p := "/v2/replica/resync"
	if store != "" {
		p += "?store=" + url.QueryEscape(store)
	}
	return c.postAsyncV2(p, nil)
}
