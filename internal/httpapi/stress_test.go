package httpapi

// Stress test for the concurrent serving path: one Server, 32 client
// goroutines, each running complete purchase → exchange → redeem flows
// over the wire. Run with -race; it exists to catch locking regressions
// in provider/httpapi, not to measure throughput.

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"p2drm/internal/cryptox/rsablind"
	"p2drm/internal/cryptox/schnorr"
	"p2drm/internal/kvstore"
	"p2drm/internal/license"
	"p2drm/internal/payment"
	"p2drm/internal/provider"
	"p2drm/internal/rel"
	"p2drm/internal/smartcard"
)

func TestServerUnderConcurrentLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	pk, bk := keys()
	spent, _ := kvstore.Open("")
	bank, err := payment.NewBank(bk, spent)
	if err != nil {
		t.Fatal(err)
	}
	bank.CreateAccount("provider", 0)
	store, _ := kvstore.Open("")
	prov, err := provider.New(provider.Config{
		Group: schnorr.Group768(), SignerKey: pk, DenomKeyBits: 1024,
		Store: store, Bank: bank, BankAccount: "provider",
		Clock: time.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	template := rel.MustParse("grant play count 10; grant transfer;")
	if _, err := prov.AddContent("stress-song", "Stress", 1, template, []byte("audio")); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(prov).WithBank(bank))
	defer srv.Close()

	const (
		workers        = 32
		flowsPerWorker = 2
	)
	g := schnorr.Group768()
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			client := NewClient(srv.URL, g)
			account := fmt.Sprintf("stress-%d", wi)
			if err := client.CreateAccount(account, 100); err != nil {
				t.Errorf("worker %d: create account: %v", wi, err)
				return
			}
			card, err := smartcard.NewRandom(g)
			if err != nil {
				t.Errorf("worker %d: card: %v", wi, err)
				return
			}
			for f := 0; f < flowsPerWorker; f++ {
				if err := runFlow(client, card, account, uint32(2*f)); err != nil {
					t.Errorf("worker %d flow %d: %v", wi, f, err)
					return
				}
			}
		}(wi)
	}
	wg.Wait()

	// Every flow issues two licenses (purchase + redeem) and revokes one.
	wantRevoked := workers * flowsPerWorker
	if got := prov.RevokedCount(); got != wantRevoked {
		t.Errorf("revoked count = %d, want %d", got, wantRevoked)
	}
}

// runFlow buys, exchanges and redeems one license entirely over HTTP,
// using pseudonym idx for the purchase and idx+1 for the redemption.
func runFlow(client *Client, card *smartcard.Card, account string, idx uint32) error {
	g := client.Group
	ps, err := card.Pseudonym(idx)
	if err != nil {
		return err
	}
	nonce, err := client.Challenge()
	if err != nil {
		return err
	}
	proof, err := card.Prove(idx, provider.RegisterContext(nonce))
	if err != nil {
		return err
	}
	if err := client.Register(ps.SignPublic(g), ps.EncPublic(g), proof, nonce); err != nil {
		return fmt.Errorf("register: %w", err)
	}
	coins, err := client.WithdrawCoins(account, 1)
	if err != nil {
		return fmt.Errorf("withdraw: %w", err)
	}
	lic, err := client.Purchase("stress-song", ps.SignPublic(g), ps.EncPublic(g), coins)
	if err != nil {
		return fmt.Errorf("purchase: %w", err)
	}

	denomPub, denomID, err := client.Denomination("stress-song")
	if err != nil {
		return err
	}
	serial, err := license.NewSerial()
	if err != nil {
		return err
	}
	blinded, st, err := rsablind.Blind(denomPub, license.AnonymousSigningBytes(serial, denomID), rand.Reader)
	if err != nil {
		return err
	}
	xn, err := client.Challenge()
	if err != nil {
		return err
	}
	xproof, err := card.Prove(idx, provider.ExchangeContext(xn, lic.Serial))
	if err != nil {
		return err
	}
	blindSig, err := client.Exchange(lic, xproof, xn, blinded)
	if err != nil {
		return fmt.Errorf("exchange: %w", err)
	}
	sig, err := rsablind.Unblind(denomPub, st, blindSig)
	if err != nil {
		return err
	}
	anon := &license.Anonymous{Serial: serial, Denom: denomID, Sig: sig}

	rIdx := idx + 1
	rp, err := card.Pseudonym(rIdx)
	if err != nil {
		return err
	}
	rn, err := client.Challenge()
	if err != nil {
		return err
	}
	rproof, err := card.Prove(rIdx, provider.RegisterContext(rn))
	if err != nil {
		return err
	}
	if err := client.Register(rp.SignPublic(g), rp.EncPublic(g), rproof, rn); err != nil {
		return fmt.Errorf("register recipient: %w", err)
	}
	if _, err := client.Redeem(anon, rp.SignPublic(g), rp.EncPublic(g)); err != nil {
		return fmt.Errorf("redeem: %w", err)
	}
	return nil
}

func TestPurchaseBatchOverHTTP(t *testing.T) {
	h := newHarness(t)
	signPub, encPub := h.registerOverHTTP(t, 0)

	const n = 4
	items := make([]BatchPurchase, n)
	for i := range items {
		coins, err := h.bank.WithdrawCoins("alice", 1)
		if err != nil {
			t.Fatal(err)
		}
		items[i] = BatchPurchase{ContentID: "song-1", SignPub: signPub, EncPub: encPub, Coins: coins}
	}
	// Unknown content in one slot must fail only that slot.
	items[2].ContentID = "missing"

	lics, errs, err := h.client.PurchaseBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if i == 2 {
			if errs[i] == nil {
				t.Error("unknown-content slot succeeded")
			}
			continue
		}
		if errs[i] != nil {
			t.Errorf("slot %d: %v", i, errs[i])
			continue
		}
		if err := license.VerifyPersonalized(h.prov.Public(), lics[i]); err != nil {
			t.Errorf("slot %d: invalid license: %v", i, err)
		}
	}

	// Empty batches are rejected outright.
	if _, _, err := h.client.PurchaseBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}

	// A slot that fails wire decoding (bad base64, unreachable through
	// the typed SDK) must produce a per-slot error, not a call-level 400.
	body := `{"purchases":[{"content_id":"song-1","sign_pub":"!!!","enc_pub":"","coins":[]}]}`
	resp, err := h.srv.Client().Post(h.srv.URL+"/v1/purchase/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("decode-error slot: status %d, want 200 with per-slot error", resp.StatusCode)
	}
	var br BatchPurchaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 1 || br.Results[0].Error == "" {
		t.Errorf("decode-error slot: results = %+v, want one slot-level error", br.Results)
	}
}
