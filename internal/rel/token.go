package rel

import "fmt"

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokInt
	tokSemi
	tokComma
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokInt:
		return "integer"
	case tokSemi:
		return "';'"
	case tokComma:
		return "','"
	}
	return "unknown token"
}

// token is a lexical token with its source position (1-based line/col).
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// SyntaxError reports a lexing or parsing failure with position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("rel: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// lexer splits source text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(format string, args ...interface{}) error {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '-'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

// next returns the next token.
func (l *lexer) next() (token, error) {
	// Skip whitespace and # comments.
	for l.pos < len(l.src) {
		c := l.peek()
		if isSpace(c) {
			l.advance()
			continue
		}
		if c == '#' {
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line, col: l.col}, nil
	}
	startLine, startCol := l.line, l.col
	c := l.peek()
	switch {
	case c == ';':
		l.advance()
		return token{kind: tokSemi, text: ";", line: startLine, col: startCol}, nil
	case c == ',':
		l.advance()
		return token{kind: tokComma, text: ",", line: startLine, col: startCol}, nil
	case c == '"':
		l.advance()
		var buf []byte
		for {
			if l.pos >= len(l.src) {
				return token{}, &SyntaxError{Line: startLine, Col: startCol, Msg: "unterminated string"}
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if l.pos >= len(l.src) {
					return token{}, &SyntaxError{Line: startLine, Col: startCol, Msg: "unterminated escape"}
				}
				esc := l.advance()
				switch esc {
				case '"', '\\':
					buf = append(buf, esc)
				default:
					return token{}, &SyntaxError{Line: startLine, Col: startCol, Msg: fmt.Sprintf("unknown escape \\%c", esc)}
				}
				continue
			}
			if ch == '\n' {
				return token{}, &SyntaxError{Line: startLine, Col: startCol, Msg: "newline in string"}
			}
			buf = append(buf, ch)
		}
		return token{kind: tokString, text: string(buf), line: startLine, col: startCol}, nil
	case isDigit(c):
		var buf []byte
		for l.pos < len(l.src) && isDigit(l.peek()) {
			buf = append(buf, l.advance())
		}
		if l.pos < len(l.src) && isIdentStart(l.peek()) {
			return token{}, l.errf("malformed number")
		}
		return token{kind: tokInt, text: string(buf), line: startLine, col: startCol}, nil
	case isIdentStart(c):
		var buf []byte
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			buf = append(buf, l.advance())
		}
		return token{kind: tokIdent, text: string(buf), line: startLine, col: startCol}, nil
	}
	return token{}, l.errf("unexpected character %q", c)
}

// lexAll tokenizes the whole input (including the trailing EOF token).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
