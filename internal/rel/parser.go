package rel

import (
	"fmt"
	"strconv"
	"time"
)

// Parse compiles rights-expression source text into Rights. Parsing a text
// and re-rendering with String is idempotent: Parse(s).String() is
// canonical regardless of the input's ordering or whitespace.
func Parse(src string) (*Rights, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	r := &Rights{Grants: make(map[Action]Grant)}
	for p.peek().kind != tokEOF {
		if err := p.statement(r); err != nil {
			return nil, err
		}
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// MustParse is Parse for statically-known-good sources; panics on error.
func MustParse(src string) *Rights {
	r, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return r
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...interface{}) error {
	return &SyntaxError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, p.errf(t, "expected %s, found %s", kind, t)
	}
	return t, nil
}

// expectIdent consumes a specific keyword.
func (p *parser) expectIdent(word string) (token, error) {
	t := p.next()
	if t.kind != tokIdent || t.text != word {
		return t, p.errf(t, "expected %q, found %s", word, t)
	}
	return t, nil
}

func (p *parser) statement(r *Rights) error {
	t := p.next()
	if t.kind != tokIdent {
		return p.errf(t, "expected statement keyword, found %s", t)
	}
	switch t.text {
	case "grant":
		return p.grantStmt(r)
	case "valid":
		return p.validStmt(r)
	case "device":
		return p.deviceStmt(r)
	case "region":
		return p.regionStmt(r)
	case "require":
		return p.requireStmt(r)
	case "delegate":
		return p.delegateStmt(r)
	default:
		return p.errf(t, "unknown statement %q", t.text)
	}
}

func (p *parser) grantStmt(r *Rights) error {
	act, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	g := Grant{Action: Action(act.text), Count: Unlimited}
	if p.peek().kind == tokIdent && p.peek().text == "count" {
		p.next()
		n, err := p.expect(tokInt)
		if err != nil {
			return err
		}
		v, err := strconv.ParseInt(n.text, 10, 64)
		if err != nil || v <= 0 {
			return p.errf(n, "count must be a positive integer")
		}
		g.Count = v
	}
	if prev, dup := r.Grants[g.Action]; dup {
		return p.errf(act, "duplicate grant for %q (previous count %d)", g.Action, prev.Count)
	}
	r.Grants[g.Action] = g
	_, err = p.expect(tokSemi)
	return err
}

func (p *parser) parseTime(t token) (time.Time, error) {
	ts, err := time.Parse(time.RFC3339, t.text)
	if err != nil {
		return time.Time{}, p.errf(t, "invalid RFC3339 time %q", t.text)
	}
	return ts.UTC(), nil
}

func (p *parser) validStmt(r *Rights) error {
	t := p.next()
	if t.kind != tokIdent {
		return p.errf(t, "expected 'from' or 'until', found %s", t)
	}
	switch t.text {
	case "from":
		fromTok, err := p.expect(tokString)
		if err != nil {
			return err
		}
		from, err := p.parseTime(fromTok)
		if err != nil {
			return err
		}
		if _, err := p.expectIdent("until"); err != nil {
			return err
		}
		untilTok, err := p.expect(tokString)
		if err != nil {
			return err
		}
		until, err := p.parseTime(untilTok)
		if err != nil {
			return err
		}
		if !r.NotBefore.IsZero() || !r.NotAfter.IsZero() {
			return p.errf(t, "duplicate validity window")
		}
		r.NotBefore, r.NotAfter = from, until
	case "until":
		untilTok, err := p.expect(tokString)
		if err != nil {
			return err
		}
		until, err := p.parseTime(untilTok)
		if err != nil {
			return err
		}
		if !r.NotBefore.IsZero() || !r.NotAfter.IsZero() {
			return p.errf(t, "duplicate validity window")
		}
		r.NotAfter = until
	default:
		return p.errf(t, "expected 'from' or 'until', found %q", t.text)
	}
	_, err := p.expect(tokSemi)
	return err
}

func (p *parser) stringList() ([]string, error) {
	var out []string
	for {
		s, err := p.expect(tokString)
		if err != nil {
			return nil, err
		}
		if s.text == "" {
			return nil, p.errf(s, "empty string in list")
		}
		out = append(out, s.text)
		if p.peek().kind != tokComma {
			return out, nil
		}
		p.next()
	}
}

func (p *parser) deviceStmt(r *Rights) error {
	if _, err := p.expectIdent("class"); err != nil {
		return err
	}
	list, err := p.stringList()
	if err != nil {
		return err
	}
	r.DeviceClasses = append(r.DeviceClasses, list...)
	_, err = p.expect(tokSemi)
	return err
}

func (p *parser) regionStmt(r *Rights) error {
	list, err := p.stringList()
	if err != nil {
		return err
	}
	r.Regions = append(r.Regions, list...)
	_, err = p.expect(tokSemi)
	return err
}

func (p *parser) requireStmt(r *Rights) error {
	if _, err := p.expectIdent("domain"); err != nil {
		return err
	}
	r.RequireDomain = true
	_, err := p.expect(tokSemi)
	return err
}

func (p *parser) delegateStmt(r *Rights) error {
	t := p.next()
	if t.kind != tokIdent {
		return p.errf(t, "expected 'allow' or 'deny', found %s", t)
	}
	switch t.text {
	case "allow":
		r.DelegationAllowed = true
	case "deny":
		r.DelegationAllowed = false
	default:
		return p.errf(t, "expected 'allow' or 'deny', found %q", t.text)
	}
	_, err := p.expect(tokSemi)
	return err
}
