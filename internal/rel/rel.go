// Package rel implements the P2DRM rights expression language: the small
// policy language embedded in every license that tells a compliant device
// what the holder may do with the content.
//
// The 2004 paper assumes an abstract "rights" blob inside licenses
// (the commercial systems of the era used ODRL or XrML); this package is
// the reproduction's concrete instantiation. It is deliberately small but
// real: a grammar with a lexer, parser and evaluator, plus the
// *intersection* semantics needed for star (delegation) licenses where a
// user may further restrict — never widen — the rights they pass on.
//
// Grammar (statements end with ';', comments start with '#'):
//
//	grant <action> [count N];          # play, copy, transfer, export, ...
//	valid from "RFC3339" until "RFC3339";
//	valid until "RFC3339";
//	device class "audio" [, "video"];  # device must match one listed class
//	region "EU" [, "US"];              # playback region allowlist
//	require domain;                    # only inside an authorized domain
//	delegate allow | delegate deny;    # may the holder issue star licenses
//
// Example:
//
//	grant play count 10;
//	grant transfer;
//	valid until "2005-01-01T00:00:00Z";
//	device class "audio";
//	region "EU", "US";
//	delegate allow;
package rel

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Action names a right a license can grant. Free-form identifiers are
// accepted; the constants cover the actions used by the protocols.
type Action string

// Canonical actions.
const (
	ActPlay     Action = "play"
	ActCopy     Action = "copy"
	ActTransfer Action = "transfer"
	ActExport   Action = "export"
	ActPrint    Action = "print"
)

// Unlimited marks a grant with no usage count cap.
const Unlimited = int64(-1)

// Grant is one granted action with an optional remaining-use cap.
type Grant struct {
	Action Action
	// Count is the total allowed uses, or Unlimited.
	Count int64
}

// Rights is the compiled, canonical form of a rights expression. The zero
// value grants nothing and never validates; build with Parse or the
// Builder.
type Rights struct {
	Grants map[Action]Grant
	// NotBefore/NotAfter bound validity; zero time means unbounded.
	NotBefore time.Time
	NotAfter  time.Time
	// DeviceClasses, if non-empty, is an allowlist of device classes.
	DeviceClasses []string
	// Regions, if non-empty, is an allowlist of playback regions.
	Regions []string
	// RequireDomain restricts use to devices inside an authorized domain.
	RequireDomain bool
	// DelegationAllowed permits the holder to issue star licenses.
	DelegationAllowed bool
}

// Context carries the facts a device knows at evaluation time.
type Context struct {
	Now         time.Time
	DeviceClass string
	Region      string
	InDomain    bool
	// Used maps action → uses already consumed (from device secure state).
	Used map[Action]int64
}

// Decision is the outcome of evaluating one action against rights.
type Decision struct {
	Allowed bool
	// Reason explains a denial (empty when allowed).
	Reason string
	// Metered reports whether the action consumes a use count; the device
	// must persist the increment before rendering.
	Metered bool
	// Remaining is the remaining use count after this use (Unlimited when
	// uncapped). Only meaningful when Allowed.
	Remaining int64
}

// Evaluate decides whether action is permitted under r in ctx.
func (r *Rights) Evaluate(action Action, ctx Context) Decision {
	deny := func(format string, args ...interface{}) Decision {
		return Decision{Allowed: false, Reason: fmt.Sprintf(format, args...)}
	}
	g, ok := r.Grants[action]
	if !ok {
		return deny("action %q not granted", action)
	}
	if !r.NotBefore.IsZero() && ctx.Now.Before(r.NotBefore) {
		return deny("license not valid before %s", r.NotBefore.Format(time.RFC3339))
	}
	if !r.NotAfter.IsZero() && !ctx.Now.Before(r.NotAfter) {
		return deny("license expired at %s", r.NotAfter.Format(time.RFC3339))
	}
	if len(r.DeviceClasses) > 0 && !containsString(r.DeviceClasses, ctx.DeviceClass) {
		return deny("device class %q not permitted", ctx.DeviceClass)
	}
	if len(r.Regions) > 0 && !containsString(r.Regions, ctx.Region) {
		return deny("region %q not permitted", ctx.Region)
	}
	if r.RequireDomain && !ctx.InDomain {
		return deny("license requires an authorized domain")
	}
	if g.Count == Unlimited {
		return Decision{Allowed: true, Remaining: Unlimited}
	}
	used := ctx.Used[action]
	if used >= g.Count {
		return deny("use count exhausted (%d of %d used)", used, g.Count)
	}
	return Decision{Allowed: true, Metered: true, Remaining: g.Count - used - 1}
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// Intersect returns the rights granted by BOTH r and other — the star
// license rule: a delegate's rights can only shrink. Counts take the
// minimum, windows intersect, allowlists intersect (an empty allowlist
// means "no restriction" and adopts the other side's list), boolean
// restrictions OR together.
func (r *Rights) Intersect(other *Rights) *Rights {
	out := &Rights{Grants: make(map[Action]Grant)}
	for act, ga := range r.Grants {
		gb, ok := other.Grants[act]
		if !ok {
			continue
		}
		count := ga.Count
		if count == Unlimited || (gb.Count != Unlimited && gb.Count < count) {
			count = gb.Count
		}
		out.Grants[act] = Grant{Action: act, Count: count}
	}
	out.NotBefore = laterTime(r.NotBefore, other.NotBefore)
	out.NotAfter = earlierTime(r.NotAfter, other.NotAfter)
	dc, dcImpossible := intersectLists(r.DeviceClasses, other.DeviceClasses)
	rg, rgImpossible := intersectLists(r.Regions, other.Regions)
	out.DeviceClasses = dc
	out.Regions = rg
	out.RequireDomain = r.RequireDomain || other.RequireDomain
	out.DelegationAllowed = r.DelegationAllowed && other.DelegationAllowed
	// Disjoint allowlists mean no context can ever satisfy both sides.
	// An empty list encodes "unrestricted", so the only sound encoding of
	// "nothing permitted" is to drop every grant.
	if dcImpossible || rgImpossible {
		out.Grants = make(map[Action]Grant)
		out.DeviceClasses = nil
		out.Regions = nil
	}
	return out
}

// laterTime returns the later of two times, treating zero as "unbounded".
func laterTime(a, b time.Time) time.Time {
	if a.IsZero() {
		return b
	}
	if b.IsZero() {
		return a
	}
	if a.After(b) {
		return a
	}
	return b
}

// earlierTime returns the earlier of two, treating zero as "unbounded".
func earlierTime(a, b time.Time) time.Time {
	if a.IsZero() {
		return b
	}
	if b.IsZero() {
		return a
	}
	if a.Before(b) {
		return a
	}
	return b
}

// intersectLists intersects two allowlists where empty means "anything".
// impossible is true when both sides restrict but share no entry, i.e. the
// combined constraint is unsatisfiable.
func intersectLists(a, b []string) (out []string, impossible bool) {
	if len(a) == 0 {
		return append([]string(nil), b...), false
	}
	if len(b) == 0 {
		return append([]string(nil), a...), false
	}
	for _, v := range a {
		if containsString(b, v) {
			out = append(out, v)
		}
	}
	return out, len(out) == 0
}

// Narrower reports whether r grants no more than base in every dimension —
// the check a compliant device runs before honouring a star license.
func (r *Rights) Narrower(base *Rights) bool {
	// Rights granting no actions permit nothing, hence are narrower than
	// anything regardless of their constraint lists.
	if len(r.Grants) == 0 {
		return true
	}
	for act, g := range r.Grants {
		bg, ok := base.Grants[act]
		if !ok {
			return false
		}
		if bg.Count != Unlimited && (g.Count == Unlimited || g.Count > bg.Count) {
			return false
		}
	}
	if !base.NotBefore.IsZero() && (r.NotBefore.IsZero() || r.NotBefore.Before(base.NotBefore)) {
		return false
	}
	if !base.NotAfter.IsZero() && (r.NotAfter.IsZero() || r.NotAfter.After(base.NotAfter)) {
		return false
	}
	if len(base.DeviceClasses) > 0 {
		if len(r.DeviceClasses) == 0 {
			return false
		}
		for _, c := range r.DeviceClasses {
			if !containsString(base.DeviceClasses, c) {
				return false
			}
		}
	}
	if len(base.Regions) > 0 {
		if len(r.Regions) == 0 {
			return false
		}
		for _, c := range r.Regions {
			if !containsString(base.Regions, c) {
				return false
			}
		}
	}
	if base.RequireDomain && !r.RequireDomain {
		return false
	}
	return true
}

// String renders the canonical text form: grants sorted by action,
// constraints in fixed order, lists sorted. Canonical text is what gets
// hashed into license signatures, so it must be deterministic.
func (r *Rights) String() string {
	var b strings.Builder
	actions := make([]string, 0, len(r.Grants))
	for a := range r.Grants {
		actions = append(actions, string(a))
	}
	sort.Strings(actions)
	for _, a := range actions {
		g := r.Grants[Action(a)]
		if g.Count == Unlimited {
			fmt.Fprintf(&b, "grant %s;\n", a)
		} else {
			fmt.Fprintf(&b, "grant %s count %d;\n", a, g.Count)
		}
	}
	switch {
	case !r.NotBefore.IsZero() && !r.NotAfter.IsZero():
		fmt.Fprintf(&b, "valid from %q until %q;\n",
			r.NotBefore.UTC().Format(time.RFC3339), r.NotAfter.UTC().Format(time.RFC3339))
	case !r.NotAfter.IsZero():
		fmt.Fprintf(&b, "valid until %q;\n", r.NotAfter.UTC().Format(time.RFC3339))
	case !r.NotBefore.IsZero():
		fmt.Fprintf(&b, "valid from %q until %q;\n",
			r.NotBefore.UTC().Format(time.RFC3339), time.Time{}.UTC().Format(time.RFC3339))
	}
	if len(r.DeviceClasses) > 0 {
		fmt.Fprintf(&b, "device class %s;\n", quotedList(r.DeviceClasses))
	}
	if len(r.Regions) > 0 {
		fmt.Fprintf(&b, "region %s;\n", quotedList(r.Regions))
	}
	if r.RequireDomain {
		b.WriteString("require domain;\n")
	}
	if r.DelegationAllowed {
		b.WriteString("delegate allow;\n")
	}
	return b.String()
}

func quotedList(items []string) string {
	cp := append([]string(nil), items...)
	sort.Strings(cp)
	quoted := make([]string, len(cp))
	for i, s := range cp {
		quoted[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(quoted, ", ")
}

// Canonical returns the canonical byte form used in license signatures.
func (r *Rights) Canonical() []byte { return []byte(r.String()) }

// Clone deep-copies the rights.
func (r *Rights) Clone() *Rights {
	out := &Rights{
		Grants:            make(map[Action]Grant, len(r.Grants)),
		NotBefore:         r.NotBefore,
		NotAfter:          r.NotAfter,
		DeviceClasses:     append([]string(nil), r.DeviceClasses...),
		Regions:           append([]string(nil), r.Regions...),
		RequireDomain:     r.RequireDomain,
		DelegationAllowed: r.DelegationAllowed,
	}
	for k, v := range r.Grants {
		out.Grants[k] = v
	}
	return out
}

// Equal compares two rights by canonical form.
func (r *Rights) Equal(other *Rights) bool {
	return r.String() == other.String()
}

// Validate checks internal consistency (a license with invalid rights is
// rejected at issuance).
func (r *Rights) Validate() error {
	if len(r.Grants) == 0 {
		return errors.New("rel: rights grant no actions")
	}
	for a, g := range r.Grants {
		if a == "" {
			return errors.New("rel: empty action name")
		}
		if g.Count != Unlimited && g.Count <= 0 {
			return fmt.Errorf("rel: grant %q has non-positive count %d", a, g.Count)
		}
	}
	if !r.NotBefore.IsZero() && !r.NotAfter.IsZero() && !r.NotBefore.Before(r.NotAfter) {
		return errors.New("rel: validity window is empty")
	}
	return nil
}

// Builder constructs Rights fluently; used by provider catalog code and
// tests.
type Builder struct {
	r Rights
}

// NewBuilder starts an empty rights builder.
func NewBuilder() *Builder {
	return &Builder{r: Rights{Grants: make(map[Action]Grant)}}
}

// Grant adds an unlimited grant.
func (b *Builder) Grant(a Action) *Builder {
	b.r.Grants[a] = Grant{Action: a, Count: Unlimited}
	return b
}

// GrantCount adds a counted grant.
func (b *Builder) GrantCount(a Action, n int64) *Builder {
	b.r.Grants[a] = Grant{Action: a, Count: n}
	return b
}

// ValidFrom sets the window start.
func (b *Builder) ValidFrom(t time.Time) *Builder { b.r.NotBefore = t; return b }

// ValidUntil sets the window end.
func (b *Builder) ValidUntil(t time.Time) *Builder { b.r.NotAfter = t; return b }

// DeviceClass appends to the device-class allowlist.
func (b *Builder) DeviceClass(classes ...string) *Builder {
	b.r.DeviceClasses = append(b.r.DeviceClasses, classes...)
	return b
}

// Region appends to the region allowlist.
func (b *Builder) Region(regions ...string) *Builder {
	b.r.Regions = append(b.r.Regions, regions...)
	return b
}

// RequireDomain restricts use to authorized-domain devices.
func (b *Builder) RequireDomain() *Builder { b.r.RequireDomain = true; return b }

// AllowDelegation permits star licensing.
func (b *Builder) AllowDelegation() *Builder { b.r.DelegationAllowed = true; return b }

// Build validates and returns the rights.
func (b *Builder) Build() (*Rights, error) {
	r := b.r.Clone()
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// MustBuild is Build for statically-known-good rights; panics on error.
func (b *Builder) MustBuild() *Rights {
	r, err := b.Build()
	if err != nil {
		panic(err)
	}
	return r
}
