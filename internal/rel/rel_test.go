package rel

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var (
	t2004 = time.Date(2004, 6, 1, 0, 0, 0, 0, time.UTC)
	t2005 = time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
)

const sampleSrc = `
# a typical music license
grant play count 10;
grant transfer;
valid until "2005-01-01T00:00:00Z";
device class "audio";
region "EU", "US";
delegate allow;
`

func TestParseSample(t *testing.T) {
	r, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if g := r.Grants[ActPlay]; g.Count != 10 {
		t.Errorf("play count = %d, want 10", g.Count)
	}
	if g := r.Grants[ActTransfer]; g.Count != Unlimited {
		t.Errorf("transfer count = %d, want unlimited", g.Count)
	}
	if !r.NotAfter.Equal(t2005) {
		t.Errorf("NotAfter = %v", r.NotAfter)
	}
	if len(r.DeviceClasses) != 1 || r.DeviceClasses[0] != "audio" {
		t.Errorf("device classes = %v", r.DeviceClasses)
	}
	if len(r.Regions) != 2 {
		t.Errorf("regions = %v", r.Regions)
	}
	if !r.DelegationAllowed {
		t.Error("delegation not parsed")
	}
}

func TestParseCanonicalIdempotent(t *testing.T) {
	r := MustParse(sampleSrc)
	canon := r.String()
	r2, err := Parse(canon)
	if err != nil {
		t.Fatalf("canonical text does not reparse: %v\n%s", err, canon)
	}
	if r2.String() != canon {
		t.Errorf("canonicalisation unstable:\n%s\nvs\n%s", canon, r2.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"no grants", `valid until "2005-01-01T00:00:00Z";`},
		{"missing semi", "grant play"},
		{"bad keyword", "allow play;"},
		{"bad count", "grant play count 0;"},
		{"negative count", "grant play count -1;"},
		{"bad time", `grant play; valid until "not-a-time";`},
		{"dup grant", "grant play; grant play count 2;"},
		{"dup window", `grant play; valid until "2005-01-01T00:00:00Z"; valid until "2006-01-01T00:00:00Z";`},
		{"unterminated string", `grant play; region "EU`},
		{"bad escape", `grant play; region "E\q";`},
		{"stray char", "grant play; @"},
		{"empty window", `grant play; valid from "2005-01-01T00:00:00Z" until "2004-01-01T00:00:00Z";`},
		{"empty list item", `grant play; region "";`},
		{"delegate junk", "grant play; delegate maybe;"},
		{"require junk", "grant play; require tea;"},
		{"number glued to ident", "grant play count 5x;"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tc.src)
			}
		})
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("grant play;\n  grant play;")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 2 {
		t.Errorf("error line = %d, want 2", se.Line)
	}
	if !strings.Contains(se.Error(), "duplicate") {
		t.Errorf("error message %q", se.Error())
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	r, err := Parse("# leading comment\n\n  grant   play  ; # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Grants[ActPlay]; !ok {
		t.Error("grant lost")
	}
}

func TestEvaluateMatrix(t *testing.T) {
	r := MustParse(sampleSrc)
	base := Context{Now: t2004, DeviceClass: "audio", Region: "EU"}

	cases := []struct {
		name   string
		action Action
		mutate func(Context) Context
		want   bool
		reason string
	}{
		{"allowed play", ActPlay, nil, true, ""},
		{"allowed transfer", ActTransfer, nil, true, ""},
		{"not granted", ActCopy, nil, false, "not granted"},
		{"expired", ActPlay, func(c Context) Context { c.Now = t2005.Add(time.Hour); return c }, false, "expired"},
		{"expires exactly at boundary", ActPlay, func(c Context) Context { c.Now = t2005; return c }, false, "expired"},
		{"wrong device class", ActPlay, func(c Context) Context { c.DeviceClass = "video"; return c }, false, "device class"},
		{"wrong region", ActPlay, func(c Context) Context { c.Region = "JP"; return c }, false, "region"},
		{"count exhausted", ActPlay, func(c Context) Context {
			c.Used = map[Action]int64{ActPlay: 10}
			return c
		}, false, "exhausted"},
		{"count one left", ActPlay, func(c Context) Context {
			c.Used = map[Action]int64{ActPlay: 9}
			return c
		}, true, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := base
			if tc.mutate != nil {
				ctx = tc.mutate(base)
			}
			d := r.Evaluate(tc.action, ctx)
			if d.Allowed != tc.want {
				t.Fatalf("Allowed = %v (%s), want %v", d.Allowed, d.Reason, tc.want)
			}
			if !tc.want && !strings.Contains(d.Reason, tc.reason) {
				t.Errorf("Reason = %q, want contains %q", d.Reason, tc.reason)
			}
		})
	}
}

func TestEvaluateMetering(t *testing.T) {
	r := MustParse("grant play count 3;")
	d := r.Evaluate(ActPlay, Context{Now: t2004})
	if !d.Allowed || !d.Metered || d.Remaining != 2 {
		t.Errorf("decision = %+v", d)
	}
	d = r.Evaluate(ActPlay, Context{Now: t2004, Used: map[Action]int64{ActPlay: 2}})
	if !d.Allowed || d.Remaining != 0 {
		t.Errorf("last use decision = %+v", d)
	}
	un := MustParse("grant play;")
	d = un.Evaluate(ActPlay, Context{Now: t2004})
	if !d.Allowed || d.Metered || d.Remaining != Unlimited {
		t.Errorf("unlimited decision = %+v", d)
	}
}

func TestEvaluateNotBefore(t *testing.T) {
	r := MustParse(`grant play; valid from "2004-06-01T00:00:00Z" until "2005-01-01T00:00:00Z";`)
	d := r.Evaluate(ActPlay, Context{Now: t2004.Add(-time.Hour)})
	if d.Allowed {
		t.Error("allowed before window start")
	}
	d = r.Evaluate(ActPlay, Context{Now: t2004})
	if !d.Allowed {
		t.Errorf("denied at window start: %s", d.Reason)
	}
}

func TestEvaluateRequireDomain(t *testing.T) {
	r := MustParse("grant play; require domain;")
	if r.Evaluate(ActPlay, Context{Now: t2004}).Allowed {
		t.Error("allowed outside domain")
	}
	if !r.Evaluate(ActPlay, Context{Now: t2004, InDomain: true}).Allowed {
		t.Error("denied inside domain")
	}
}

func TestIntersect(t *testing.T) {
	base := MustParse(`
grant play count 10;
grant copy count 4;
grant transfer;
region "EU", "US";
`)
	restriction := MustParse(`
grant play count 3;
grant transfer count 1;
valid until "2005-01-01T00:00:00Z";
region "EU", "JP";
device class "audio";
require domain;
`)
	got := base.Intersect(restriction)
	if g := got.Grants[ActPlay]; g.Count != 3 {
		t.Errorf("play count = %d, want 3", g.Count)
	}
	if _, ok := got.Grants[ActCopy]; ok {
		t.Error("copy survived intersection though absent in restriction")
	}
	if g := got.Grants[ActTransfer]; g.Count != 1 {
		t.Errorf("transfer count = %d, want 1", g.Count)
	}
	if !got.NotAfter.Equal(t2005) {
		t.Errorf("NotAfter = %v", got.NotAfter)
	}
	if len(got.Regions) != 1 || got.Regions[0] != "EU" {
		t.Errorf("regions = %v", got.Regions)
	}
	if len(got.DeviceClasses) != 1 || got.DeviceClasses[0] != "audio" {
		t.Errorf("device classes = %v (empty side should adopt other)", got.DeviceClasses)
	}
	if !got.RequireDomain {
		t.Error("RequireDomain lost")
	}
}

func TestIntersectIsNarrower(t *testing.T) {
	base := MustParse("grant play count 10; grant transfer; region \"EU\";")
	restr := MustParse("grant play count 3; device class \"audio\";")
	inter := base.Intersect(restr)
	if !inter.Narrower(base) {
		t.Error("intersection is not narrower than base")
	}
	if !inter.Narrower(restr) {
		t.Error("intersection is not narrower than restriction")
	}
}

func TestNarrowerRejectsWidening(t *testing.T) {
	base := MustParse(`grant play count 5; region "EU"; valid until "2005-01-01T00:00:00Z";`)
	cases := []struct{ name, src string }{
		{"more uses", `grant play count 6; region "EU"; valid until "2005-01-01T00:00:00Z";`},
		{"unlimited uses", `grant play; region "EU"; valid until "2005-01-01T00:00:00Z";`},
		{"new action", `grant play count 5; grant copy; region "EU"; valid until "2005-01-01T00:00:00Z";`},
		{"wider region", `grant play count 5; region "EU", "US"; valid until "2005-01-01T00:00:00Z";`},
		{"no region limit", `grant play count 5; valid until "2005-01-01T00:00:00Z";`},
		{"longer validity", `grant play count 5; region "EU"; valid until "2006-01-01T00:00:00Z";`},
		{"no validity limit", `grant play count 5; region "EU";`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if MustParse(tc.src).Narrower(base) {
				t.Error("widened rights passed Narrower")
			}
		})
	}
	same := MustParse(`grant play count 5; region "EU"; valid until "2005-01-01T00:00:00Z";`)
	if !same.Narrower(base) {
		t.Error("identical rights failed Narrower")
	}
}

func TestBuilder(t *testing.T) {
	r, err := NewBuilder().
		GrantCount(ActPlay, 5).
		Grant(ActTransfer).
		ValidUntil(t2005).
		DeviceClass("audio").
		Region("EU").
		AllowDelegation().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// Builder output must round-trip through the parser.
	r2, err := Parse(r.String())
	if err != nil {
		t.Fatalf("builder output does not parse: %v\n%s", err, r.String())
	}
	if !r.Equal(r2) {
		t.Error("builder/parse mismatch")
	}
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Error("empty builder produced rights")
	}
	if _, err := NewBuilder().GrantCount(ActPlay, -3).Build(); err == nil {
		t.Error("negative count accepted")
	}
	bad := NewBuilder().Grant(ActPlay).ValidFrom(t2005).ValidUntil(t2004)
	if _, err := bad.Build(); err == nil {
		t.Error("inverted window accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	r := MustParse(sampleSrc)
	c := r.Clone()
	c.Grants[ActCopy] = Grant{Action: ActCopy, Count: 1}
	c.Regions = append(c.Regions, "JP")
	if _, ok := r.Grants[ActCopy]; ok {
		t.Error("clone shares grant map")
	}
	if len(r.Regions) != 2 {
		t.Error("clone shares region slice")
	}
}

// randomRights builds arbitrary-but-valid rights from a seed.
func randomRights(r *rand.Rand) *Rights {
	b := NewBuilder()
	actions := []Action{ActPlay, ActCopy, ActTransfer, ActExport, ActPrint}
	n := 1 + r.Intn(len(actions))
	for _, a := range actions[:n] {
		if r.Intn(2) == 0 {
			b.Grant(a)
		} else {
			b.GrantCount(a, int64(1+r.Intn(100)))
		}
	}
	if r.Intn(2) == 0 {
		b.ValidUntil(t2005.Add(time.Duration(r.Intn(1000)) * time.Hour))
	}
	if r.Intn(3) == 0 {
		b.ValidFrom(t2004.Add(-time.Duration(r.Intn(1000)) * time.Hour))
	}
	if r.Intn(2) == 0 {
		b.DeviceClass([]string{"audio", "video", "ebook"}[r.Intn(3)])
	}
	if r.Intn(2) == 0 {
		b.Region([]string{"EU", "US", "JP"}[r.Intn(3)])
	}
	if r.Intn(4) == 0 {
		b.RequireDomain()
	}
	if r.Intn(2) == 0 {
		b.AllowDelegation()
	}
	return b.MustBuild()
}

// Property: canonical text always reparses to equal rights.
func TestQuickCanonicalRoundtrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(12))}
	f := func(seed int64) bool {
		r := randomRights(rand.New(rand.NewSource(seed)))
		back, err := Parse(r.String())
		if err != nil {
			return false
		}
		return back.Equal(r)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Intersect is commutative (by canonical form) and its result is
// Narrower than both operands.
func TestQuickIntersectProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(13))}
	f := func(seedA, seedB int64) bool {
		a := randomRights(rand.New(rand.NewSource(seedA)))
		b := randomRights(rand.New(rand.NewSource(seedB)))
		ab := a.Intersect(b)
		ba := b.Intersect(a)
		if !ab.Equal(ba) {
			return false
		}
		return ab.Narrower(a) && ab.Narrower(b)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: anything the intersection allows, both operands allow.
func TestQuickIntersectSoundness(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(14))}
	ctxs := []Context{
		{Now: t2004, DeviceClass: "audio", Region: "EU"},
		{Now: t2004, DeviceClass: "video", Region: "US", InDomain: true},
		{Now: t2005.Add(-time.Hour), DeviceClass: "ebook", Region: "JP"},
	}
	actions := []Action{ActPlay, ActCopy, ActTransfer, ActExport, ActPrint}
	f := func(seedA, seedB int64) bool {
		a := randomRights(rand.New(rand.NewSource(seedA)))
		b := randomRights(rand.New(rand.NewSource(seedB)))
		inter := a.Intersect(b)
		for _, ctx := range ctxs {
			for _, act := range actions {
				if inter.Evaluate(act, ctx).Allowed {
					if !a.Evaluate(act, ctx).Allowed || !b.Evaluate(act, ctx).Allowed {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
