// Package core assembles the P2DRM parties into the end-to-end protocols
// of the 2004 paper. It is the library's main entry point: examples, the
// CLI, the HTTP layer and the benchmark harness all drive this API.
//
// The protocols, each a method on System:
//
//	Purchase     anonymous purchase: fresh pseudonym → register →
//	             withdraw blind cash → buy → personalized license.
//	Transfer     unlinkable transfer: holder exchanges the license for a
//	             blind-signed anonymous license, hands the bearer token to
//	             the recipient out of band, recipient redeems under a
//	             fresh pseudonym. The provider cannot link the two ends.
//	Play         compliant playback on a device.
//	Delegate     star license issuance (user-attributed rights).
//
// System wires an in-process provider and bank; the httpapi package
// exposes the same provider over HTTP for multi-process deployments.
package core

import (
	"context"
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"p2drm/internal/cryptox/rsablind"
	"p2drm/internal/cryptox/schnorr"
	"p2drm/internal/device"
	"p2drm/internal/kvstore"
	"p2drm/internal/license"
	"p2drm/internal/payment"
	"p2drm/internal/provider"
	"p2drm/internal/rel"
	"p2drm/internal/smartcard"
)

// Options configures a System.
type Options struct {
	// Group selects the discrete-log group (default Group2048; tests and
	// benches use Group768 for speed).
	Group *schnorr.Group
	// RSABits sizes the provider and bank keys (default 2048).
	RSABits int
	// DenomKeyBits sizes per-content blind-signature keys (default RSABits).
	DenomKeyBits int
	// StateDir persists provider/bank state; empty means in-memory.
	StateDir string
	// Clock injects time for deterministic tests.
	Clock func() time.Time
	// DisableBlinding switches Transfer to the ablation mode (A1 in
	// DESIGN.md): anonymous serials are sent to the provider in clear,
	// making exchange↔redeem linkable. Never use outside experiments.
	DisableBlinding bool
	// CryptoPools enables the crypto acceleration layer: the fixed-base
	// table for the group generator, a background-filled Schnorr/KEM
	// nonce pool, and RSA blinding-factor pools for the bank coin key
	// and (via EnableCryptoPools after AddContent) the denomination
	// keys. Results are bit-identical to the inline paths; this only
	// moves work off the request path.
	CryptoPools bool
}

// Crypto pool sizing for CryptoPools mode: enough depth to ride out a
// burst of a full HTTP batch (256 items) with one filler goroutine per
// pool so background refill cannot starve the serving path on small
// boxes.
const (
	cryptoPoolSize    = 512
	cryptoPoolFillers = 1
)

// System is an assembled P2DRM deployment.
type System struct {
	Group    *schnorr.Group
	Provider *provider.Provider
	Bank     *payment.Bank
	opts     Options

	mu    sync.Mutex
	users map[string]*User
}

// User is a client-side principal: a smartcard plus local state. The name
// exists ONLY locally (ground truth for experiments); it never crosses the
// wire to the provider.
type User struct {
	Name        string
	Card        *smartcard.Card
	BankAccount string

	mu            sync.Mutex
	nextPseudonym uint32
	wallet        []*license.Personalized
	pseudonymOf   map[license.Serial]uint32
}

// NewSystem builds a provider + bank pair with fresh keys.
func NewSystem(opts Options) (*System, error) {
	if opts.Group == nil {
		opts.Group = schnorr.Group2048()
	}
	if opts.RSABits == 0 {
		opts.RSABits = 2048
	}
	if opts.DenomKeyBits == 0 {
		opts.DenomKeyBits = opts.RSABits
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	bankKey, err := rsa.GenerateKey(rand.Reader, opts.RSABits)
	if err != nil {
		return nil, fmt.Errorf("core: bank key: %w", err)
	}
	provKey, err := rsa.GenerateKey(rand.Reader, opts.RSABits)
	if err != nil {
		return nil, fmt.Errorf("core: provider key: %w", err)
	}
	bankDir, provDir := "", ""
	if opts.StateDir != "" {
		bankDir = opts.StateDir + "/bank"
		provDir = opts.StateDir + "/provider"
	}
	spent, err := kvstore.Open(bankDir)
	if err != nil {
		return nil, err
	}
	bank, err := payment.NewBank(bankKey, spent)
	if err != nil {
		return nil, err
	}
	if err := bank.CreateAccount("provider", 0); err != nil {
		return nil, err
	}
	store, err := kvstore.Open(provDir)
	if err != nil {
		return nil, err
	}
	prov, err := provider.New(provider.Config{
		Group:        opts.Group,
		SignerKey:    provKey,
		DenomKeyBits: opts.DenomKeyBits,
		Store:        store,
		Bank:         bank,
		BankAccount:  "provider",
		Clock:        opts.Clock,
	})
	if err != nil {
		return nil, err
	}
	sys := &System{
		Group:    opts.Group,
		Provider: prov,
		Bank:     bank,
		opts:     opts,
		users:    make(map[string]*User),
	}
	if opts.CryptoPools {
		sys.EnableCryptoPools()
	}
	return sys, nil
}

// EnableCryptoPools builds the fixed-base table for the group generator
// and starts the nonce and blinding-factor pools (idempotent). Call it
// again after AddContent so new denomination keys get pools too.
func (s *System) EnableCryptoPools() {
	s.Group.Precompute()
	s.Group.EnableNoncePool(cryptoPoolSize, cryptoPoolFillers)
	s.Bank.EnableCoinBlindingPool(cryptoPoolSize, cryptoPoolFillers)
	s.Provider.EnableDenomBlindingPools(cryptoPoolSize, cryptoPoolFillers)
}

// NewUser creates a local user with a fresh card and a funded bank
// account.
func (s *System) NewUser(name string, funds int64) (*User, error) {
	card, err := smartcard.NewRandom(s.Group)
	if err != nil {
		return nil, err
	}
	if err := s.Bank.CreateAccount(name, funds); err != nil {
		return nil, err
	}
	u := &User{Name: name, Card: card, BankAccount: name, pseudonymOf: make(map[license.Serial]uint32)}
	s.mu.Lock()
	s.users[name] = u
	s.mu.Unlock()
	return u, nil
}

// FreshPseudonym reserves the next unused pseudonym index.
func (u *User) FreshPseudonym() uint32 {
	u.mu.Lock()
	defer u.mu.Unlock()
	idx := u.nextPseudonym
	u.nextPseudonym++
	return idx
}

// Wallet returns the user's held licenses.
func (u *User) Wallet() []*license.Personalized {
	u.mu.Lock()
	defer u.mu.Unlock()
	return append([]*license.Personalized(nil), u.wallet...)
}

// addLicense stores a license in the wallet.
func (u *User) addLicense(l *license.Personalized) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.wallet = append(u.wallet, l)
}

// dropLicense removes a license (after transfer).
func (u *User) dropLicense(serial license.Serial) {
	u.mu.Lock()
	defer u.mu.Unlock()
	kept := u.wallet[:0]
	for _, l := range u.wallet {
		if l.Serial != serial {
			kept = append(kept, l)
		}
	}
	u.wallet = kept
}

// register runs the pseudonym registration protocol.
func (s *System) register(u *User, index uint32) (signPub, encPub []byte, err error) {
	ps, err := u.Card.Pseudonym(index)
	if err != nil {
		return nil, nil, err
	}
	nonce, err := s.Provider.Challenge(context.Background())
	if err != nil {
		return nil, nil, err
	}
	proof, err := u.Card.Prove(index, provider.RegisterContext(nonce))
	if err != nil {
		return nil, nil, err
	}
	signPub = ps.SignPublic(s.Group)
	encPub = ps.EncPublic(s.Group)
	if err := s.Provider.Register(context.Background(), signPub, encPub, proof, nonce); err != nil {
		return nil, nil, err
	}
	return signPub, encPub, nil
}

// Purchase runs the anonymous purchase protocol under a fresh pseudonym.
func (s *System) Purchase(u *User, contentID license.ContentID) (*license.Personalized, error) {
	return s.PurchaseWithPseudonym(u, contentID, u.FreshPseudonym())
}

// PurchaseWithPseudonym purchases under a caller-chosen pseudonym index.
// Experiments use this to model pseudonym REUSE (the F1 x-axis): reusing
// an index lets the provider link those purchases.
func (s *System) PurchaseWithPseudonym(u *User, contentID license.ContentID, index uint32) (*license.Personalized, error) {
	item, err := s.Provider.Item(contentID)
	if err != nil {
		return nil, err
	}
	signPub, encPub, err := s.register(u, index)
	if err != nil {
		return nil, err
	}
	coins, err := s.Bank.WithdrawCoins(u.BankAccount, int(item.PriceCredits))
	if err != nil {
		return nil, err
	}
	lic, err := s.Provider.Purchase(context.Background(), provider.PurchaseRequest{
		ContentID: contentID,
		SignPub:   signPub,
		EncPub:    encPub,
		Coins:     coins,
	})
	if err != nil {
		return nil, err
	}
	u.addLicense(lic)
	// Remember which pseudonym the license binds to, for later use.
	u.mu.Lock()
	u.pseudonymOf[lic.Serial] = index
	u.mu.Unlock()
	return lic, nil
}

// PseudonymFor returns the pseudonym index a held license binds to.
func (u *User) PseudonymFor(serial license.Serial) (uint32, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	idx, ok := u.pseudonymOf[serial]
	if !ok {
		return 0, errors.New("core: license not in wallet")
	}
	return idx, nil
}

// Exchange retires a held license for an anonymous bearer license.
func (s *System) Exchange(u *User, lic *license.Personalized) (*license.Anonymous, error) {
	idx, err := u.PseudonymFor(lic.Serial)
	if err != nil {
		return nil, err
	}
	denomPub, denomID, err := s.Provider.DenomPublic(lic.ContentID)
	if err != nil {
		return nil, err
	}
	serial, err := license.NewSerial()
	if err != nil {
		return nil, err
	}
	msg := license.AnonymousSigningBytes(serial, denomID)

	var blinded []byte
	var st *rsablind.State
	if s.opts.DisableBlinding {
		// Ablation A1: the provider sees (the deterministic hash of) the
		// serial it signs, so exchange and redeem become linkable.
		blinded = rsablind.Prehash(denomPub, msg)
	} else {
		blinded, st, err = rsablind.Blind(denomPub, msg, rand.Reader)
		if err != nil {
			return nil, err
		}
	}
	nonce, err := s.Provider.Challenge(context.Background())
	if err != nil {
		return nil, err
	}
	proof, err := u.Card.Prove(idx, provider.ExchangeContext(nonce, lic.Serial))
	if err != nil {
		return nil, err
	}
	blindSig, err := s.Provider.Exchange(context.Background(), lic, proof, nonce, blinded)
	if err != nil {
		return nil, err
	}
	var sig []byte
	if s.opts.DisableBlinding {
		sig = blindSig // raw FDH signature over msg
		if err := rsablind.Verify(denomPub, msg, sig); err != nil {
			return nil, err
		}
	} else {
		sig, err = rsablind.Unblind(denomPub, st, blindSig)
		if err != nil {
			return nil, err
		}
	}
	u.dropLicense(lic.Serial)
	return &license.Anonymous{Serial: serial, Denom: denomID, Sig: sig}, nil
}

// Redeem turns a received anonymous license into a personalized license
// under a fresh pseudonym of the recipient.
func (s *System) Redeem(u *User, anon *license.Anonymous) (*license.Personalized, error) {
	idx := u.FreshPseudonym()
	signPub, encPub, err := s.register(u, idx)
	if err != nil {
		return nil, err
	}
	lic, err := s.Provider.Redeem(context.Background(), anon, signPub, encPub)
	if err != nil {
		return nil, err
	}
	u.addLicense(lic)
	u.mu.Lock()
	u.pseudonymOf[lic.Serial] = idx
	u.mu.Unlock()
	return lic, nil
}

// Transfer runs the full anonymous transfer: from exchanges, to redeems.
// The bearer token moves between users out of band (here: a function
// call); the provider sees two unlinkable interactions.
func (s *System) Transfer(from *User, lic *license.Personalized, to *User) (*license.Personalized, error) {
	anon, err := s.Exchange(from, lic)
	if err != nil {
		return nil, err
	}
	return s.Redeem(to, anon)
}

// NewDevice manufactures a certified compliant device wired to this
// system's trust anchors, with the current revocation filter installed.
func (s *System) NewDevice(id, class, region string) (*device.Device, *device.Certificate, error) {
	key, err := schnorr.GenerateKey(s.Group, rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	st, err := kvstore.Open("")
	if err != nil {
		return nil, nil, err
	}
	dev, err := device.New(device.Config{
		ID: id, Class: class, Region: region,
		Group:       s.Group,
		ProviderPub: s.Provider.Public(),
		State:       st,
		Clock:       s.opts.Clock,
		IdentityKey: key,
	})
	if err != nil {
		return nil, nil, err
	}
	cert, err := s.Provider.CertifyDevice(id, class, key.Y)
	if err != nil {
		return nil, nil, err
	}
	if err := s.RefreshDevice(dev); err != nil {
		return nil, nil, err
	}
	return dev, cert, nil
}

// RefreshDevice installs the provider's current revocation filter.
func (s *System) RefreshDevice(dev *device.Device) error {
	sf, err := s.Provider.RevocationFilter()
	if err != nil {
		return err
	}
	return dev.InstallRevocationFilter(sf)
}

// Play fetches the encrypted content and plays the license on a device.
func (s *System) Play(u *User, dev *device.Device, lic *license.Personalized, out io.Writer) error {
	idx, err := u.PseudonymFor(lic.Serial)
	if err != nil {
		return err
	}
	item, err := s.Provider.Item(lic.ContentID)
	if err != nil {
		return err
	}
	return dev.Play(u.Card, idx, lic, newByteReader(item.Encrypted), out)
}

// Delegate issues a star license from a held license to another user's
// fresh pseudonym and returns it with the delegate index used.
func (s *System) Delegate(from *User, lic *license.Personalized, to *User, restriction *rel.Rights) (*license.Star, uint32, error) {
	idx, err := from.PseudonymFor(lic.Serial)
	if err != nil {
		return nil, 0, err
	}
	dIdx := to.FreshPseudonym()
	dp, err := to.Card.Pseudonym(dIdx)
	if err != nil {
		return nil, 0, err
	}
	star, err := from.Card.IssueStarLicense(idx, lic, restriction,
		dp.SignPublic(s.Group), dp.EncPublic(s.Group), s.opts.Clock())
	if err != nil {
		return nil, 0, err
	}
	return star, dIdx, nil
}

// PlayStar plays a delegated license on a device.
func (s *System) PlayStar(to *User, dIdx uint32, dev *device.Device, parent *license.Personalized, star *license.Star, out io.Writer) error {
	item, err := s.Provider.Item(parent.ContentID)
	if err != nil {
		return err
	}
	return dev.PlayStar(to.Card, dIdx, parent, star, newByteReader(item.Encrypted), out)
}

// newByteReader avoids importing bytes just for a reader.
func newByteReader(b []byte) io.Reader { return &byteReader{b: b} }

type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}
