package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"p2drm/internal/cryptox/rsablind"
	"p2drm/internal/cryptox/schnorr"
	"p2drm/internal/license"
	"p2drm/internal/provider"
	"p2drm/internal/rel"
)

var fixedNow = time.Date(2004, 9, 1, 12, 0, 0, 0, time.UTC)

var testTemplate = rel.MustParse(`
grant play count 10;
grant transfer;
delegate allow;
`)

// newTestSystem builds a small-parameter system with one content item.
func newTestSystem(t *testing.T, opts Options) *System {
	t.Helper()
	opts.Group = schnorr.Group768()
	opts.RSABits = 1024
	opts.DenomKeyBits = 1024
	if opts.Clock == nil {
		opts.Clock = func() time.Time { return fixedNow }
	}
	s, err := NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Provider.AddContent("song-1", "Song One", 3, testTemplate,
		[]byte("some protected audio content")); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPurchaseAndPlay(t *testing.T) {
	s := newTestSystem(t, Options{})
	alice, err := s.NewUser("alice", 10)
	if err != nil {
		t.Fatal(err)
	}
	lic, err := s.Purchase(alice, "song-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(alice.Wallet()) != 1 {
		t.Errorf("wallet size = %d", len(alice.Wallet()))
	}
	if bal, _ := s.Bank.Balance("alice"); bal != 7 {
		t.Errorf("alice balance = %d, want 7", bal)
	}
	dev, _, err := s.NewDevice("living-room", "audio", "EU")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := s.Play(alice, dev, lic, &out); err != nil {
		t.Fatalf("play: %v", err)
	}
	if out.String() != "some protected audio content" {
		t.Error("played content mismatch")
	}
}

func TestPurchaseInsufficientFunds(t *testing.T) {
	s := newTestSystem(t, Options{})
	poor, _ := s.NewUser("poor", 1)
	if _, err := s.Purchase(poor, "song-1"); err == nil {
		t.Error("purchase with insufficient funds succeeded")
	}
}

func TestTransferEndToEnd(t *testing.T) {
	s := newTestSystem(t, Options{})
	alice, _ := s.NewUser("alice", 10)
	bob, _ := s.NewUser("bob", 10)

	lic, err := s.Purchase(alice, "song-1")
	if err != nil {
		t.Fatal(err)
	}
	newLic, err := s.Transfer(alice, lic, bob)
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if len(alice.Wallet()) != 0 {
		t.Error("alice kept the license after transfer")
	}
	if len(bob.Wallet()) != 1 {
		t.Error("bob did not receive the license")
	}
	// Old license dead, new license plays.
	if !s.Provider.Revoked(lic.Serial) {
		t.Error("old serial not revoked")
	}
	dev, _, _ := s.NewDevice("bob-player", "audio", "EU")
	var out bytes.Buffer
	if err := s.Play(bob, dev, newLic, &out); err != nil {
		t.Fatalf("bob plays: %v", err)
	}
	// Alice's stale copy refuses on a refreshed device.
	aliceDev, _, _ := s.NewDevice("alice-player", "audio", "EU")
	out.Reset()
	if err := s.Play(alice, aliceDev, lic, &out); err == nil {
		t.Error("alice played a transferred (revoked) license")
	}
}

func TestTransferUnlinkableInJournal(t *testing.T) {
	// The provider journal must not allow linking exchange to redeem:
	// no common serials, pseudonyms, or blobs between the two events.
	s := newTestSystem(t, Options{})
	alice, _ := s.NewUser("alice", 10)
	bob, _ := s.NewUser("bob", 10)
	lic, _ := s.Purchase(alice, "song-1")
	if _, err := s.Transfer(alice, lic, bob); err != nil {
		t.Fatal(err)
	}
	var ex, rd *provider.Event
	events := s.Provider.Events()
	for i := range events {
		switch events[i].Type {
		case provider.EvExchange:
			ex = &events[i]
		case provider.EvRedeem:
			rd = &events[i]
		}
	}
	if ex == nil || rd == nil {
		t.Fatal("missing journal events")
	}
	if ex.Serial == rd.Serial {
		t.Error("exchange and redeem share a personalized serial")
	}
	if rd.AnonSerial == "" {
		t.Error("redeem did not record the anonymous serial (test invalid)")
	}
	if ex.BlindedHash == "" {
		t.Error("exchange did not record the blinded hash (test invalid)")
	}
	// The blinded hash the provider saw must NOT equal a hash of the
	// anonymous signing bytes — that is exactly what blinding prevents.
	anonSerial, err := license.ParseSerial(rd.AnonSerial)
	if err != nil {
		t.Fatal(err)
	}
	denomPub, denomID, _ := s.Provider.DenomPublic("song-1")
	msg := license.AnonymousSigningBytes(anonSerial, denomID)
	if ex.BlindedHash == hashPrefix(rsablind.Prehash(denomPub, msg)) {
		t.Error("provider could link exchange to redeem by hashing")
	}
}

func TestAblationNoBlindingIsLinkable(t *testing.T) {
	// With blinding disabled (A1), the provider CAN link: the blinded
	// blob it signed IS the anonymous signing bytes.
	s := newTestSystem(t, Options{DisableBlinding: true})
	alice, _ := s.NewUser("alice", 10)
	bob, _ := s.NewUser("bob", 10)
	lic, _ := s.Purchase(alice, "song-1")
	if _, err := s.Transfer(alice, lic, bob); err != nil {
		t.Fatal(err)
	}
	var ex, rd *provider.Event
	events := s.Provider.Events()
	for i := range events {
		switch events[i].Type {
		case provider.EvExchange:
			ex = &events[i]
		case provider.EvRedeem:
			rd = &events[i]
		}
	}
	anonSerial, _ := license.ParseSerial(rd.AnonSerial)
	denomPub, denomID, _ := s.Provider.DenomPublic("song-1")
	msg := license.AnonymousSigningBytes(anonSerial, denomID)
	if ex.BlindedHash != hashPrefix(rsablind.Prehash(denomPub, msg)) {
		t.Error("expected linkability without blinding; ablation broken")
	}
}

func TestTransferredLicenseCannotBeDoubleRedeemed(t *testing.T) {
	s := newTestSystem(t, Options{})
	alice, _ := s.NewUser("alice", 10)
	bob, _ := s.NewUser("bob", 10)
	carol, _ := s.NewUser("carol", 10)
	lic, _ := s.Purchase(alice, "song-1")
	anon, err := s.Exchange(alice, lic)
	if err != nil {
		t.Fatal(err)
	}
	// Alice copies the bearer token and gives it to both Bob and Carol.
	if _, err := s.Redeem(bob, anon); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Redeem(carol, anon); !errors.Is(err, provider.ErrAlreadyRedeemed) {
		t.Errorf("second redemption: %v", err)
	}
}

func TestDelegateAndPlayStar(t *testing.T) {
	s := newTestSystem(t, Options{})
	alice, _ := s.NewUser("alice", 10)
	kid, _ := s.NewUser("kid", 0)
	lic, _ := s.Purchase(alice, "song-1")

	star, dIdx, err := s.Delegate(alice, lic, kid, rel.MustParse("grant play count 2;"))
	if err != nil {
		t.Fatal(err)
	}
	dev, _, _ := s.NewDevice("kid-player", "audio", "EU")
	var out bytes.Buffer
	for i := 0; i < 2; i++ {
		out.Reset()
		if err := s.PlayStar(kid, dIdx, dev, lic, star, &out); err != nil {
			t.Fatalf("star play %d: %v", i, err)
		}
	}
	if err := s.PlayStar(kid, dIdx, dev, lic, star, &out); err == nil {
		t.Error("kid exceeded delegated budget")
	}
}

func TestPlayMetersAcrossDevices(t *testing.T) {
	// Counters are per-device secure state: the paper's model (each
	// compliant device enforces its own counters). 10 plays on one
	// device exhaust that device only.
	s := newTestSystem(t, Options{})
	alice, _ := s.NewUser("alice", 20)
	lic, _ := s.Purchase(alice, "song-1")
	dev1, _, _ := s.NewDevice("d1", "audio", "EU")
	var out bytes.Buffer
	for i := 0; i < 10; i++ {
		out.Reset()
		if err := s.Play(alice, dev1, lic, &out); err != nil {
			t.Fatalf("play %d: %v", i, err)
		}
	}
	if err := s.Play(alice, dev1, lic, &out); err == nil {
		t.Error("11th play on dev1 allowed")
	}
}

func TestPseudonymFreshnessAcrossPurchases(t *testing.T) {
	// Default Purchase uses a fresh pseudonym per transaction: the
	// journal must show distinct fingerprints.
	s := newTestSystem(t, Options{})
	alice, _ := s.NewUser("alice", 20)
	s.Purchase(alice, "song-1")
	s.Purchase(alice, "song-1")
	fps := map[string]bool{}
	for _, e := range s.Provider.Events() {
		if e.Type == provider.EvPurchase {
			fps[e.PseudonymFP] = true
		}
	}
	if len(fps) != 2 {
		t.Errorf("distinct purchase pseudonyms = %d, want 2", len(fps))
	}
}

func TestPseudonymReuseIsVisible(t *testing.T) {
	s := newTestSystem(t, Options{})
	alice, _ := s.NewUser("alice", 20)
	idx := alice.FreshPseudonym()
	s.PurchaseWithPseudonym(alice, "song-1", idx)
	s.PurchaseWithPseudonym(alice, "song-1", idx)
	fps := map[string]bool{}
	for _, e := range s.Provider.Events() {
		if e.Type == provider.EvPurchase {
			fps[e.PseudonymFP] = true
		}
	}
	if len(fps) != 1 {
		t.Errorf("reused pseudonym produced %d fingerprints", len(fps))
	}
}

func TestDurableSystemState(t *testing.T) {
	dir := t.TempDir()
	s := newTestSystem(t, Options{StateDir: dir})
	alice, _ := s.NewUser("alice", 10)
	lic, _ := s.Purchase(alice, "song-1")
	bob, _ := s.NewUser("bob", 10)
	if _, err := s.Transfer(alice, lic, bob); err != nil {
		t.Fatal(err)
	}
	// Revocation survives in the store (Open replays it): check via a
	// fresh revocation read in the same provider.
	if !s.Provider.Revoked(lic.Serial) {
		t.Error("revocation not durable")
	}
}

// hashPrefix mirrors the provider's journal encoding of blinded blobs.
func hashPrefix(b []byte) string {
	return provider.BlindedHashForTest(b)
}
