package revocation

import (
	"crypto/rand"
	"crypto/rsa"
	"sync"
	"testing"
	"time"

	"p2drm/internal/cryptox/rsablind"
	"p2drm/internal/kvstore"
	"p2drm/internal/license"
)

var (
	sgOnce sync.Once
	signer *rsablind.Signer
)

func testSigner(t *testing.T) *rsablind.Signer {
	t.Helper()
	sgOnce.Do(func() {
		key, err := rsa.GenerateKey(rand.Reader, 1024)
		if err != nil {
			panic(err)
		}
		signer, err = rsablind.NewSigner(key)
		if err != nil {
			panic(err)
		}
	})
	return signer
}

func memList(t *testing.T) *List {
	t.Helper()
	st, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(st, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func newSerial(t *testing.T) license.Serial {
	t.Helper()
	s, err := license.NewSerial()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAddContains(t *testing.T) {
	l := memList(t)
	s := newSerial(t)
	if l.Contains(s) {
		t.Error("fresh serial already revoked")
	}
	if err := l.Add(s); err != nil {
		t.Fatal(err)
	}
	if !l.Contains(s) {
		t.Error("revoked serial not found")
	}
	if l.Len() != 1 {
		t.Errorf("Len = %d", l.Len())
	}
	// Idempotent.
	if err := l.Add(s); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Errorf("Len after re-add = %d", l.Len())
	}
}

func TestAddBatch(t *testing.T) {
	l := memList(t)
	serials := make([]license.Serial, 10)
	for i := range serials {
		serials[i] = newSerial(t)
	}
	// Pre-revoke one to exercise dedup.
	l.Add(serials[3])
	if err := l.AddBatch(serials); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 10 {
		t.Errorf("Len = %d, want 10", l.Len())
	}
	for _, s := range serials {
		if !l.Contains(s) {
			t.Errorf("serial %s missing", s)
		}
	}
	if err := l.AddBatch(nil); err != nil {
		t.Error(err)
	}
}

func TestDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := kvstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(st, 100)
	if err != nil {
		t.Fatal(err)
	}
	serials := make([]license.Serial, 5)
	for i := range serials {
		serials[i] = newSerial(t)
		l.Add(serials[i])
	}
	st.Close()

	st2, err := kvstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	l2, err := Open(st2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 5 {
		t.Fatalf("Len after reopen = %d", l2.Len())
	}
	for _, s := range serials {
		if !l2.Contains(s) {
			t.Errorf("serial %s lost across reopen", s)
		}
	}
}

func TestSignedFilterRoundtrip(t *testing.T) {
	l := memList(t)
	sgn := testSigner(t)
	revoked := newSerial(t)
	l.Add(revoked)
	now := time.Date(2004, 9, 1, 0, 0, 0, 0, time.UTC)

	sf, err := l.ExportFilter(sgn, now)
	if err != nil {
		t.Fatal(err)
	}
	f, err := VerifyFilter(sgn.Public(), sf)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Contains(revoked[:]) {
		t.Error("filter missing revoked serial")
	}
	clean := newSerial(t)
	if f.Contains(clean[:]) {
		t.Log("false positive on fresh serial (possible but ~1e-4)")
	}
}

func TestSignedFilterTamperRejected(t *testing.T) {
	l := memList(t)
	sgn := testSigner(t)
	l.Add(newSerial(t))
	sf, _ := l.ExportFilter(sgn, time.Now())

	bad := *sf
	bad.Filter = append([]byte(nil), sf.Filter...)
	bad.Filter[len(bad.Filter)-1] ^= 0xFF
	if _, err := VerifyFilter(sgn.Public(), &bad); err == nil {
		t.Error("tampered filter accepted")
	}
	bad2 := *sf
	bad2.IssuedAt = sf.IssuedAt.Add(time.Hour)
	if _, err := VerifyFilter(sgn.Public(), &bad2); err == nil {
		t.Error("re-dated filter accepted (rollback protection broken)")
	}
	if _, err := VerifyFilter(sgn.Public(), nil); err == nil {
		t.Error("nil filter accepted")
	}
}

func TestSnapshotAndInclusionProof(t *testing.T) {
	l := memList(t)
	sgn := testSigner(t)
	serials := make([]license.Serial, 20)
	for i := range serials {
		serials[i] = newSerial(t)
		l.Add(serials[i])
	}
	snap, tree, err := l.Snapshot(sgn, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySnapshot(sgn.Public(), snap); err != nil {
		t.Fatal(err)
	}
	if snap.Size != 20 {
		t.Errorf("snapshot size = %d", snap.Size)
	}
	proof, err := ProveRevoked(tree, serials[7])
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRevoked(snap, serials[7], proof); err != nil {
		t.Errorf("inclusion proof rejected: %v", err)
	}
	// Proof must not transfer to another serial.
	if err := VerifyRevoked(snap, serials[8], proof); err == nil {
		t.Error("proof accepted for wrong serial")
	}
	// Absent serial has no proof.
	if _, err := ProveRevoked(tree, newSerial(t)); err == nil {
		t.Error("proof produced for non-revoked serial")
	}
}

func TestSnapshotTamperRejected(t *testing.T) {
	l := memList(t)
	sgn := testSigner(t)
	l.Add(newSerial(t))
	snap, _, _ := l.Snapshot(sgn, time.Now())

	bad := *snap
	bad.Size++
	if err := VerifySnapshot(sgn.Public(), &bad); err == nil {
		t.Error("size-tampered snapshot accepted")
	}
	bad2 := *snap
	bad2.Root[0] ^= 1
	if err := VerifySnapshot(sgn.Public(), &bad2); err == nil {
		t.Error("root-tampered snapshot accepted")
	}
	if err := VerifySnapshot(sgn.Public(), nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}

func TestNoFalseNegativesAtScale(t *testing.T) {
	l := memList(t)
	var serials []license.Serial
	for i := 0; i < 2000; i++ {
		s := newSerial(t)
		serials = append(serials, s)
	}
	if err := l.AddBatch(serials); err != nil {
		t.Fatal(err)
	}
	for i, s := range serials {
		if !l.Contains(s) {
			t.Fatalf("false negative at %d — double redemption possible", i)
		}
	}
	// Exactness despite Bloom: fresh serials must be reported clean.
	for i := 0; i < 500; i++ {
		if l.Contains(newSerial(t)) {
			t.Fatal("Contains returned true for never-revoked serial (fallback to exact store failed)")
		}
	}
}

// TestAsyncFilterRebuild: exceeding the filter's design capacity must
// trigger a background rebuild into a larger filter, without losing a
// single serial from the fast path's view (Contains stays exact via the
// store fallback, but the filter itself must also contain every serial —
// no false negatives across the generation swap).
func TestAsyncFilterRebuild(t *testing.T) {
	st, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(st, 8) // tiny design capacity: rebuilds trigger fast
	if err != nil {
		t.Fatal(err)
	}
	serials := make([]license.Serial, 100)
	for i := range serials {
		serials[i] = newSerial(t)
		fresh, err := l.TryAdd(serials[i])
		if err != nil || !fresh {
			t.Fatalf("TryAdd %d: fresh=%v err=%v", i, fresh, err)
		}
	}
	l.waitRebuild()
	if l.Generation() == 0 {
		t.Fatal("no background rebuild completed despite 100 adds into capacity-8 filter")
	}
	if cap := l.FilterCapacity(); cap < 100 {
		t.Fatalf("FilterCapacity = %d, want >= 100 after rebuilds", cap)
	}
	for i, s := range serials {
		if !l.Contains(s) {
			t.Fatalf("serial %d lost across filter rebuild", i)
		}
	}
	if l.Len() != 100 {
		t.Fatalf("Len = %d, want 100", l.Len())
	}
}

// TestAsyncRebuildConcurrent races TryAdd/Contains against background
// rebuilds; run under -race in CI. No add may be lost, no Contains may
// return a false negative, and no call may deadlock against a rebuild.
func TestAsyncRebuildConcurrent(t *testing.T) {
	st, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 40
	all := make([][]license.Serial, writers)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		all[g] = make([]license.Serial, perWriter)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s := newSerial(t)
				all[g][i] = s
				if _, err := l.TryAdd(s); err != nil {
					t.Error(err)
					return
				}
				if !l.Contains(s) {
					t.Errorf("false negative for just-added serial")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	l.waitRebuild()
	for g := range all {
		for i, s := range all[g] {
			if !l.Contains(s) {
				t.Fatalf("writer %d serial %d lost", g, i)
			}
		}
	}
	if l.Len() != writers*perWriter {
		t.Fatalf("Len = %d, want %d", l.Len(), writers*perWriter)
	}
	if l.Generation() == 0 {
		t.Error("expected at least one rebuild generation")
	}
}

// TestForcedRebuildConcurrent races the explicit Rebuild entry point
// (the REST plane's rebuild operation) against capacity-triggered
// rebuilds from TryAdd. With a shared WaitGroup this was the
// documented Add-at-zero-concurrent-with-Wait misuse; the per-rebuild
// done channel must neither panic nor return before a cycle lands.
func TestForcedRebuildConcurrent(t *testing.T) {
	st, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := l.TryAdd(newSerial(t)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				l.Rebuild()
			}
		}()
	}
	wg.Wait()
	l.waitRebuild()
	if l.Generation() == 0 {
		t.Error("expected at least one rebuild generation")
	}
	if l.Len() != 200 {
		t.Fatalf("Len = %d, want 200", l.Len())
	}
}
