// Package revocation implements the provider's revoked/redeemed-serial
// list and the two artifacts devices and auditors consume:
//
//   - SignedFilter: a Bloom filter over all revoked serials, signed by the
//     provider. Compliant devices hold the latest filter and refuse to play
//     any license whose serial tests positive. Negatives are exact, so an
//     honest license is never wrongly blocked; positives are conservative
//     denials whose rate is a design parameter (measured in T4/A-benches).
//   - Snapshot: a signed Merkle root over the exact list. An inclusion
//     proof demonstrates that a specific serial IS revoked — the artifact a
//     seller hands a buyer during a transfer to prove the old license died
//     before money changes hands (dispute resolution in the 2004 scheme).
//
// The list itself is durable: every Add lands in the kvstore WAL before it
// is acknowledged, because forgetting a redeemed serial re-enables double
// redemption after a crash.
package revocation

import (
	"crypto/rsa"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"p2drm/internal/bloom"
	"p2drm/internal/cryptox/rsablind"
	"p2drm/internal/kvstore"
	"p2drm/internal/license"
	"p2drm/internal/merkle"
)

// keyPrefix namespaces revocation keys inside a shared store.
const keyPrefix = "rev:"

// StoreKey returns the kvstore key under which serial s is recorded.
// Exported so read replicas of the provider store can answer exact
// Contains lookups without constructing a List (httpapi's follower-side
// GET /v1/revocation/contains).
func StoreKey(s license.Serial) []byte {
	return append([]byte(keyPrefix), s[:]...)
}

// DefaultFilterCapacity sizes new Bloom filters when the caller gives no
// estimate.
const DefaultFilterCapacity = 1 << 16

// DefaultFalsePositiveRate is the filter design point: 1 in 10⁴ honest
// licenses is conservatively denied until the device refreshes its filter.
const DefaultFalsePositiveRate = 1e-4

// List is the durable revocation list.
//
// The Bloom fast path is self-maintaining: when the live count outgrows
// the filter's design capacity (so its false-positive rate drifts past
// the design point), a rebuild into a doubled filter runs on a
// BACKGROUND goroutine — TryAdd and Contains never block on it. Serials
// added while a rebuild is in flight are queued and folded into the new
// filter before the swap, so the invariant "every revoked serial is in
// the current filter" holds across generations; Contains may
// conservatively fall back to the exact store a little more often until
// the swap lands, never the reverse. Generation() counts swaps.
type List struct {
	mu     sync.RWMutex
	store  *kvstore.Store
	filter *bloom.Filter
	count  int

	// capacity is the current filter's design capacity; exceeding it
	// triggers an async rebuild into a doubled filter.
	capacity uint64
	// rebuilding is true while a background rebuild goroutine runs.
	rebuilding bool
	// pending holds serials added during a rebuild; they are folded into
	// the new filter before the swap.
	pending [][]byte
	// gen increments on every completed filter swap.
	gen uint64
	// rebuildDone is closed when the in-flight rebuild finishes; nil
	// while no rebuild runs. A fresh channel per rebuild (captured under
	// l.mu) lets Rebuild and waitRebuild wait without the
	// Add-at-zero-concurrent-with-Wait hazard a shared WaitGroup has.
	rebuildDone chan struct{}
}

// Open loads (or creates) a list backed by store. expected sizes the Bloom
// filter; pass 0 for the default. Existing entries are replayed into the
// filter; if they already exceed expected, the first rebuild is triggered
// asynchronously rather than blocking Open.
func Open(store *kvstore.Store, expected uint64) (*List, error) {
	if store == nil {
		return nil, errors.New("revocation: nil store")
	}
	if expected == 0 {
		expected = DefaultFilterCapacity
	}
	f, err := bloom.NewWithEstimates(expected, DefaultFalsePositiveRate)
	if err != nil {
		return nil, err
	}
	l := &List{store: store, filter: f, capacity: expected}
	store.PrefixScan([]byte(keyPrefix), func(k, v []byte) bool {
		f.Add(k[len(keyPrefix):])
		l.count++
		return true
	})
	l.mu.Lock()
	l.maybeRebuildLocked()
	l.mu.Unlock()
	return l, nil
}

// maybeRebuildLocked launches a background rebuild when the live count
// has outgrown the filter. Caller holds l.mu.
func (l *List) maybeRebuildLocked() {
	if l.rebuilding || uint64(l.count) <= l.capacity {
		return
	}
	target := l.capacity * 2
	for target < uint64(l.count) {
		target *= 2
	}
	l.rebuilding = true
	l.rebuildDone = make(chan struct{})
	go l.rebuild(target, l.rebuildDone)
}

// rebuild scans the exact store into a filter sized for target and swaps
// it in. It holds l.mu only for the final swap, and the store scan uses
// the kvstore's relaxed per-shard iteration — no global store snapshot
// is taken, so adds and lookups (on this list AND on everything else
// sharing the store) proceed throughout; any serial the relaxed scan
// misses was added after the rebuild started and is covered by the
// pending queue.
func (l *List) rebuild(target uint64, done chan struct{}) {
	// Closing done (after the swap is visible) releases Rebuild and
	// waitRebuild callers holding this cycle's channel. When the final
	// maybeRebuildLocked chains another rebuild, rebuildDone has already
	// been replaced with the next cycle's channel.
	defer close(done)
	f, err := bloom.NewWithEstimates(target, DefaultFalsePositiveRate)
	if err != nil {
		// Can't size a new filter: keep the old one (correct, just a
		// higher false-positive rate) and allow a future retry.
		l.mu.Lock()
		l.rebuilding = false
		l.rebuildDone = nil
		l.pending = nil
		l.mu.Unlock()
		return
	}
	l.store.PrefixScanRelaxed([]byte(keyPrefix), func(k, v []byte) bool {
		f.Add(k[len(keyPrefix):])
		return true
	})
	l.mu.Lock()
	// Serials revoked while we scanned may have missed the snapshot;
	// fold them in before the swap (double-adds are harmless).
	for _, s := range l.pending {
		f.Add(s)
	}
	l.pending = nil
	l.filter = f
	l.capacity = target
	l.rebuilding = false
	l.rebuildDone = nil
	l.gen++
	// The count may have grown past the new target while scanning.
	l.maybeRebuildLocked()
	l.mu.Unlock()
}

// Rebuild forces a full filter rebuild — the entry point behind the
// REST plane's POST /v2/revocation/rebuild operation. It launches the
// same background rebuild the capacity trigger uses (sized for the
// current count, never smaller than the current capacity), waits for
// the in-flight cycle to land, and returns the resulting generation.
// Safe to run twice: rebuilding is idempotent over the exact store, so
// the operation can be resumed after a daemon restart.
func (l *List) Rebuild() uint64 {
	l.mu.Lock()
	if !l.rebuilding {
		target := l.capacity
		for target < uint64(l.count) {
			target *= 2
		}
		l.rebuilding = true
		l.rebuildDone = make(chan struct{})
		go l.rebuild(target, l.rebuildDone)
	}
	done := l.rebuildDone
	l.mu.Unlock()
	<-done
	return l.Generation()
}

// Generation reports how many background filter rebuilds have completed.
func (l *List) Generation() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.gen
}

// FilterCapacity reports the current filter's design capacity.
func (l *List) FilterCapacity() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.capacity
}

// waitRebuild drains in-flight rebuilds, chained ones included (tests
// and shutdown paths).
func (l *List) waitRebuild() {
	for {
		l.mu.Lock()
		done := l.rebuildDone
		l.mu.Unlock()
		if done == nil {
			return
		}
		<-done
	}
}

// Add marks a serial revoked. Idempotent.
func (l *List) Add(s license.Serial) error {
	_, err := l.TryAdd(s)
	return err
}

// TryAdd marks a serial revoked and reports whether this call was the
// one that revoked it. Check and insert are atomic under the list lock,
// so of any number of concurrent TryAdds on one serial exactly one gets
// fresh=true — the provider's Exchange uses this as its double-exchange
// gate.
func (l *List) TryAdd(s license.Serial) (fresh bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	key := StoreKey(s)
	if l.store.Has(key) {
		return false, nil
	}
	if err := l.store.Put(key, []byte{1}); err != nil {
		return false, fmt.Errorf("revocation: persist: %w", err)
	}
	l.addToFilterLocked(s[:])
	return true, nil
}

// addToFilterLocked records one freshly revoked serial in the fast path:
// into the current filter always, into the pending queue too while a
// rebuild is in flight (the rebuild's store scan may have already passed
// this serial's position). Caller holds l.mu.
func (l *List) addToFilterLocked(serial []byte) {
	l.filter.Add(serial)
	l.count++
	if l.rebuilding {
		l.pending = append(l.pending, append([]byte(nil), serial...))
	}
	l.maybeRebuildLocked()
}

// AddBatch revokes several serials atomically (one WAL record).
func (l *List) AddBatch(serials []license.Serial) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := new(kvstore.Batch)
	fresh := make([]license.Serial, 0, len(serials))
	for _, s := range serials {
		key := StoreKey(s)
		if l.store.Has(key) {
			continue
		}
		b.Put(key, []byte{1})
		fresh = append(fresh, s)
	}
	if b.Len() == 0 {
		return nil
	}
	if err := l.store.Apply(b); err != nil {
		return fmt.Errorf("revocation: persist batch: %w", err)
	}
	for _, s := range fresh {
		l.addToFilterLocked(s[:])
	}
	return nil
}

// Contains reports whether s is revoked (exact answer: Bloom fast path,
// store fallback on positives).
func (l *List) Contains(s license.Serial) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if !l.filter.Contains(s[:]) {
		return false
	}
	return l.store.Has(StoreKey(s))
}

// Len returns the number of revoked serials.
func (l *List) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.count
}

// serials returns all revoked serials (held lock).
func (l *List) serialsLocked() [][]byte {
	out := make([][]byte, 0, l.count)
	l.store.PrefixScan([]byte(keyPrefix), func(k, v []byte) bool {
		out = append(out, append([]byte(nil), k[len(keyPrefix):]...))
		return true
	})
	return out
}

// SignedFilter is the device-side revocation artifact.
type SignedFilter struct {
	Filter   []byte // bloom.Marshal output
	IssuedAt time.Time
	Sig      []byte // provider FDH-RSA over signingBytes
}

func filterSigningBytes(filter []byte, issuedAt time.Time) []byte {
	out := make([]byte, 0, len(filter)+24)
	out = append(out, []byte("p2drm/revfilter/v1")...)
	var ts [8]byte
	binary.BigEndian.PutUint64(ts[:], uint64(issuedAt.UTC().Unix()))
	out = append(out, ts[:]...)
	out = append(out, filter...)
	return out
}

// ExportFilter signs the current filter state for distribution to devices.
func (l *List) ExportFilter(signer *rsablind.Signer, now time.Time) (*SignedFilter, error) {
	l.mu.RLock()
	data := l.filter.Marshal()
	l.mu.RUnlock()
	sig, err := signer.Sign(filterSigningBytes(data, now))
	if err != nil {
		return nil, fmt.Errorf("revocation: sign filter: %w", err)
	}
	return &SignedFilter{Filter: data, IssuedAt: now.UTC(), Sig: sig}, nil
}

// VerifyFilter checks a signed filter and returns the usable Bloom filter.
func VerifyFilter(pub *rsa.PublicKey, sf *SignedFilter) (*bloom.Filter, error) {
	if sf == nil {
		return nil, errors.New("revocation: nil filter")
	}
	if err := rsablind.Verify(pub, filterSigningBytes(sf.Filter, sf.IssuedAt), sf.Sig); err != nil {
		return nil, fmt.Errorf("revocation: filter signature: %w", err)
	}
	return bloom.Unmarshal(sf.Filter)
}

// Snapshot is a signed Merkle commitment to the exact revocation set.
type Snapshot struct {
	Root     [merkle.HashLen]byte
	Size     int
	IssuedAt time.Time
	Sig      []byte
}

func snapshotSigningBytes(root [merkle.HashLen]byte, size int, issuedAt time.Time) []byte {
	out := make([]byte, 0, merkle.HashLen+32)
	out = append(out, []byte("p2drm/revsnapshot/v1")...)
	out = append(out, root[:]...)
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(size))
	binary.BigEndian.PutUint64(buf[8:], uint64(issuedAt.UTC().Unix()))
	return append(out, buf[:]...)
}

// Snapshot builds and signs a Merkle snapshot plus the tree needed to
// serve inclusion proofs.
func (l *List) Snapshot(signer *rsablind.Signer, now time.Time) (*Snapshot, *merkle.Tree, error) {
	l.mu.RLock()
	leaves := l.serialsLocked()
	l.mu.RUnlock()
	tree := merkle.Build(leaves)
	snap := &Snapshot{Root: tree.Root(), Size: tree.Size(), IssuedAt: now.UTC()}
	sig, err := signer.Sign(snapshotSigningBytes(snap.Root, snap.Size, snap.IssuedAt))
	if err != nil {
		return nil, nil, fmt.Errorf("revocation: sign snapshot: %w", err)
	}
	snap.Sig = sig
	return snap, tree, nil
}

// VerifySnapshot checks the provider signature over a snapshot.
func VerifySnapshot(pub *rsa.PublicKey, snap *Snapshot) error {
	if snap == nil {
		return errors.New("revocation: nil snapshot")
	}
	if err := rsablind.Verify(pub, snapshotSigningBytes(snap.Root, snap.Size, snap.IssuedAt), snap.Sig); err != nil {
		return fmt.Errorf("revocation: snapshot signature: %w", err)
	}
	return nil
}

// ProveRevoked produces a Merkle inclusion proof that serial is in the
// snapshot tree — the "this license is dead" receipt used during transfer.
func ProveRevoked(tree *merkle.Tree, s license.Serial) (*merkle.Proof, error) {
	return tree.Prove(s[:])
}

// VerifyRevoked checks an inclusion proof against a verified snapshot.
func VerifyRevoked(snap *Snapshot, s license.Serial, proof *merkle.Proof) error {
	return merkle.VerifyInclusion(snap.Root, s[:], proof)
}
