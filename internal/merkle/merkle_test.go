package merkle

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func leaves(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("serial-%04d", i))
	}
	return out
}

func TestRootDeterministicAndOrderIndependent(t *testing.T) {
	a := Build(leaves(10))
	b := Build(leaves(10))
	if a.Root() != b.Root() {
		t.Error("same leaves, different roots")
	}
	shuffled := leaves(10)
	rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	c := Build(shuffled)
	if a.Root() != c.Root() {
		t.Error("root depends on insertion order; set semantics broken")
	}
}

func TestRootChangesWithContent(t *testing.T) {
	a := Build(leaves(10))
	b := Build(leaves(11))
	if a.Root() == b.Root() {
		t.Error("different sets share a root")
	}
}

func TestDeduplication(t *testing.T) {
	dup := append(leaves(5), leaves(5)...)
	tr := Build(dup)
	if tr.Size() != 5 {
		t.Errorf("Size = %d, want 5 after dedup", tr.Size())
	}
	if tr.Root() != Build(leaves(5)).Root() {
		t.Error("duplicated input changed root")
	}
}

func TestEmptyTree(t *testing.T) {
	a := Build(nil)
	b := Build([][]byte{})
	if a.Root() != b.Root() {
		t.Error("empty roots differ")
	}
	if a.Size() != 0 {
		t.Error("empty tree has leaves")
	}
	if a.Root() == Build(leaves(1)).Root() {
		t.Error("empty root collides with singleton root")
	}
	if _, err := a.Prove([]byte("x")); err == nil {
		t.Error("empty tree produced a proof")
	}
}

func TestSingleLeaf(t *testing.T) {
	tr := Build([][]byte{[]byte("only")})
	p, err := tr.Prove([]byte("only"))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyInclusion(tr.Root(), []byte("only"), p); err != nil {
		t.Fatal(err)
	}
	if len(p.Siblings) != 0 {
		t.Error("single-leaf proof has siblings")
	}
}

func TestProveVerifyAllLeavesVariousSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 100} {
		tr := Build(leaves(n))
		for i := 0; i < n; i++ {
			leaf := []byte(fmt.Sprintf("serial-%04d", i))
			p, err := tr.Prove(leaf)
			if err != nil {
				t.Fatalf("n=%d leaf=%d: Prove: %v", n, i, err)
			}
			if err := VerifyInclusion(tr.Root(), leaf, p); err != nil {
				t.Fatalf("n=%d leaf=%d: Verify: %v", n, i, err)
			}
		}
	}
}

func TestVerifyRejectsWrongLeaf(t *testing.T) {
	tr := Build(leaves(16))
	p, _ := tr.Prove([]byte("serial-0003"))
	if err := VerifyInclusion(tr.Root(), []byte("serial-0004"), p); err == nil {
		t.Error("proof for one leaf verified for another")
	}
	if err := VerifyInclusion(tr.Root(), []byte("not-present"), p); err == nil {
		t.Error("proof verified for absent leaf")
	}
}

func TestVerifyRejectsWrongRoot(t *testing.T) {
	tr := Build(leaves(16))
	other := Build(leaves(17))
	p, _ := tr.Prove([]byte("serial-0003"))
	if err := VerifyInclusion(other.Root(), []byte("serial-0003"), p); err == nil {
		t.Error("proof verified against wrong root")
	}
}

func TestVerifyRejectsMutatedProof(t *testing.T) {
	tr := Build(leaves(16))
	leaf := []byte("serial-0005")
	p, _ := tr.Prove(leaf)
	if len(p.Siblings) == 0 {
		t.Fatal("expected siblings")
	}
	p.Siblings[0][0] ^= 0xFF
	if err := VerifyInclusion(tr.Root(), leaf, p); err == nil {
		t.Error("mutated sibling accepted")
	}
	p2, _ := tr.Prove(leaf)
	p2.Rights[0] = !p2.Rights[0]
	if err := VerifyInclusion(tr.Root(), leaf, p2); err == nil {
		t.Error("flipped direction accepted")
	}
	if err := VerifyInclusion(tr.Root(), leaf, nil); err == nil {
		t.Error("nil proof accepted")
	}
	p3, _ := tr.Prove(leaf)
	p3.Rights = p3.Rights[:len(p3.Rights)-1]
	if err := VerifyInclusion(tr.Root(), leaf, p3); err == nil {
		t.Error("length-mismatched proof accepted")
	}
}

func TestLeafNodeDomainSeparation(t *testing.T) {
	// A leaf whose bytes equal nodePrefix||h1||h2 must not hash like the
	// interior node over (h1, h2).
	tr := Build(leaves(4))
	l0, l1 := LeafHash([]byte("serial-0000")), LeafHash([]byte("serial-0001"))
	forged := append([]byte{0x01}, append(l0[:], l1[:]...)...)
	if LeafHash(forged) == nodeHash(l0, l1) {
		t.Error("leaf/node domain separation missing")
	}
	_ = tr
}

func TestProofCodec(t *testing.T) {
	tr := Build(leaves(33))
	leaf := []byte("serial-0017")
	p, _ := tr.Prove(leaf)
	data := p.Marshal()
	back, err := UnmarshalProof(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyInclusion(tr.Root(), leaf, back); err != nil {
		t.Errorf("decoded proof invalid: %v", err)
	}
	if _, err := UnmarshalProof(data[:4]); err == nil {
		t.Error("accepted truncated proof")
	}
	bad := append([]byte(nil), data...)
	bad[6] = 7 // invalid direction byte
	if _, err := UnmarshalProof(bad); err == nil {
		t.Error("accepted invalid direction byte")
	}
	if _, err := UnmarshalProof(append(data, 0)); err == nil {
		t.Error("accepted oversized proof")
	}
}

// Property: every member of a random set proves and verifies; non-members
// cannot be proven.
func TestQuickInclusion(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(10))}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n%60) + 1
		set := make([][]byte, count)
		for i := range set {
			set[i] = []byte(fmt.Sprintf("item-%d-%d", seed, r.Intn(1000)))
		}
		tr := Build(set)
		for _, leaf := range set {
			p, err := tr.Prove(leaf)
			if err != nil {
				return false
			}
			if VerifyInclusion(tr.Root(), leaf, p) != nil {
				return false
			}
		}
		if _, err := tr.Prove([]byte("definitely-absent")); err == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
