// Package merkle implements a binary Merkle hash tree with inclusion
// proofs.
//
// The content provider periodically snapshots its revocation list into a
// Merkle tree and signs the root. Compliant devices hold only the signed
// root (32 bytes plus a signature) yet can verify, from a short proof
// served with a license, that a given serial is or is not in the snapshot —
// without trusting the channel that delivered the proof.
//
// Leaves are domain-separated from interior nodes (0x00 / 0x01 prefixes)
// to prevent second-preimage splicing attacks.
package merkle

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
)

// HashLen is the node hash size.
const HashLen = sha256.Size

var (
	leafPrefix = []byte{0x00}
	nodePrefix = []byte{0x01}
)

// LeafHash computes the domain-separated hash of a leaf value.
func LeafHash(data []byte) [HashLen]byte {
	h := sha256.New()
	h.Write(leafPrefix)
	h.Write(data)
	var out [HashLen]byte
	copy(out[:], h.Sum(nil))
	return out
}

func nodeHash(left, right [HashLen]byte) [HashLen]byte {
	h := sha256.New()
	h.Write(nodePrefix)
	h.Write(left[:])
	h.Write(right[:])
	var out [HashLen]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Tree is an immutable Merkle tree over a leaf set.
type Tree struct {
	levels [][][HashLen]byte // levels[0] = leaf hashes, last = root
	leaves [][]byte          // sorted copies of original leaf data
	index  map[[HashLen]byte]int
}

// Build constructs a tree over the given leaves. Leaves are
// deduplicated and sorted so that the root is a canonical digest of the
// *set*, independent of insertion order. An empty set has a defined root
// (hash of the empty string, domain-separated).
func Build(leaves [][]byte) *Tree {
	// Sort + dedupe copies.
	cp := make([][]byte, 0, len(leaves))
	for _, l := range leaves {
		cp = append(cp, append([]byte(nil), l...))
	}
	sort.Slice(cp, func(i, j int) bool { return bytes.Compare(cp[i], cp[j]) < 0 })
	dedup := cp[:0]
	for i, l := range cp {
		if i == 0 || !bytes.Equal(cp[i-1], l) {
			dedup = append(dedup, l)
		}
	}
	cp = dedup

	t := &Tree{leaves: cp, index: make(map[[HashLen]byte]int, len(cp))}
	level := make([][HashLen]byte, len(cp))
	for i, l := range cp {
		level[i] = LeafHash(l)
		t.index[level[i]] = i
	}
	t.levels = append(t.levels, level)
	for len(level) > 1 {
		next := make([][HashLen]byte, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				// Odd node is promoted unchanged (Bitcoin-style duplication
				// invites CVE-2012-2459-like ambiguity; promotion does not).
				next = append(next, level[i])
			}
		}
		level = next
		t.levels = append(t.levels, level)
	}
	return t
}

// emptyRoot is the canonical root of an empty set.
var emptyRoot = func() [HashLen]byte {
	h := sha256.New()
	h.Write([]byte("p2drm/merkle-empty/v1"))
	var out [HashLen]byte
	copy(out[:], h.Sum(nil))
	return out
}()

// Root returns the tree root.
func (t *Tree) Root() [HashLen]byte {
	if len(t.leaves) == 0 {
		return emptyRoot
	}
	return t.levels[len(t.levels)-1][0]
}

// Size returns the number of (deduplicated) leaves.
func (t *Tree) Size() int { return len(t.leaves) }

// Proof is an inclusion proof: the sibling hashes from leaf to root plus
// the leaf's position bits.
type Proof struct {
	LeafIndex int
	Siblings  [][HashLen]byte
	// Rights[i] is true when sibling i sits to the right of the running
	// hash at level i.
	Rights []bool
}

// Prove produces an inclusion proof for leaf data. Returns an error when
// the leaf is not in the tree.
func (t *Tree) Prove(data []byte) (*Proof, error) {
	lh := LeafHash(data)
	idx, ok := t.index[lh]
	if !ok {
		return nil, errors.New("merkle: leaf not in tree")
	}
	p := &Proof{LeafIndex: idx}
	pos := idx
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		level := t.levels[lvl]
		var sibIdx int
		var right bool
		if pos%2 == 0 {
			sibIdx, right = pos+1, true
		} else {
			sibIdx, right = pos-1, false
		}
		if sibIdx < len(level) {
			p.Siblings = append(p.Siblings, level[sibIdx])
			p.Rights = append(p.Rights, right)
		}
		// Promoted odd nodes contribute no sibling at this level.
		pos /= 2
	}
	return p, nil
}

// VerifyInclusion checks an inclusion proof of data against root.
func VerifyInclusion(root [HashLen]byte, data []byte, p *Proof) error {
	if p == nil {
		return errors.New("merkle: nil proof")
	}
	if len(p.Siblings) != len(p.Rights) {
		return errors.New("merkle: malformed proof")
	}
	h := LeafHash(data)
	for i, sib := range p.Siblings {
		if p.Rights[i] {
			h = nodeHash(h, sib)
		} else {
			h = nodeHash(sib, h)
		}
	}
	if h != root {
		return errors.New("merkle: inclusion proof does not match root")
	}
	return nil
}

// Marshal encodes a proof:
//
//	leafIndex[4] | count[2] | (dir[1] | hash[32])*
func (p *Proof) Marshal() []byte {
	out := make([]byte, 6+len(p.Siblings)*(1+HashLen))
	out[0] = byte(p.LeafIndex >> 24)
	out[1] = byte(p.LeafIndex >> 16)
	out[2] = byte(p.LeafIndex >> 8)
	out[3] = byte(p.LeafIndex)
	out[4] = byte(len(p.Siblings) >> 8)
	out[5] = byte(len(p.Siblings))
	off := 6
	for i, s := range p.Siblings {
		if p.Rights[i] {
			out[off] = 1
		}
		copy(out[off+1:], s[:])
		off += 1 + HashLen
	}
	return out
}

// UnmarshalProof decodes a Marshal-ed proof.
func UnmarshalProof(data []byte) (*Proof, error) {
	if len(data) < 6 {
		return nil, errors.New("merkle: truncated proof")
	}
	idx := int(data[0])<<24 | int(data[1])<<16 | int(data[2])<<8 | int(data[3])
	count := int(data[4])<<8 | int(data[5])
	want := 6 + count*(1+HashLen)
	if len(data) != want {
		return nil, fmt.Errorf("merkle: proof length %d, want %d", len(data), want)
	}
	p := &Proof{LeafIndex: idx}
	off := 6
	for i := 0; i < count; i++ {
		switch data[off] {
		case 0:
			p.Rights = append(p.Rights, false)
		case 1:
			p.Rights = append(p.Rights, true)
		default:
			return nil, errors.New("merkle: invalid direction byte")
		}
		var h [HashLen]byte
		copy(h[:], data[off+1:])
		p.Siblings = append(p.Siblings, h)
		off += 1 + HashLen
	}
	return p, nil
}
