package main

import (
	"regexp"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: p2drm
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkT2_PurchaseP2DRM 	    1518	   1618278 ns/op
BenchmarkT3_PurchaseBatch-4 	    1873	    661754 ns/op
BenchmarkT3_DepositParallel/group_commit/shards_16-8 	     500	   2400000 ns/op
BenchmarkBad no numbers here
PASS
ok  	p2drm	13.218s
`
	rep, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "p2drm" {
		t.Fatalf("header fields = %q %q %q", rep.Goos, rep.Goarch, rep.Pkg)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	want := map[string]Result{
		"BenchmarkT2_PurchaseP2DRM":                          {Iterations: 1518, NsPerOp: 1618278},
		"BenchmarkT3_PurchaseBatch":                          {Iterations: 1873, NsPerOp: 661754},
		"BenchmarkT3_DepositParallel/group_commit/shards_16": {Iterations: 500, NsPerOp: 2400000},
	}
	if len(rep.Benchmarks) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(rep.Benchmarks), len(want), rep.Benchmarks)
	}
	for name, w := range want {
		got, ok := rep.Benchmarks[name]
		if !ok {
			t.Fatalf("missing %s in %v", name, rep.Benchmarks)
		}
		if got != w {
			t.Fatalf("%s = %+v, want %+v", name, got, w)
		}
	}
}

// TestParseMedian: -count=N repeats each benchmark line; the report
// must carry the median ns/op (odd: middle; even: mean of middles) so
// one noisy run cannot move the snapshot.
func TestParseMedian(t *testing.T) {
	input := `BenchmarkT3_PurchaseBatch-4 	 100	 900 ns/op
BenchmarkT3_PurchaseBatch-4 	 100	 5000 ns/op
BenchmarkT3_PurchaseBatch-4 	 100	 1000 ns/op
BenchmarkT3_ExchangeBatch-4 	 200	 400 ns/op
BenchmarkT3_ExchangeBatch-4 	 200	 600 ns/op
`
	rep, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	odd := rep.Benchmarks["BenchmarkT3_PurchaseBatch"]
	if odd.NsPerOp != 1000 || odd.Samples != 3 {
		t.Fatalf("odd-count median = %+v, want 1000 ns/op over 3 samples", odd)
	}
	even := rep.Benchmarks["BenchmarkT3_ExchangeBatch"]
	if even.NsPerOp != 500 || even.Samples != 2 {
		t.Fatalf("even-count median = %+v, want 500 ns/op over 2 samples", even)
	}
	// A single run keeps its exact value and omits Samples.
	single, err := parse(strings.NewReader("BenchmarkT3_Solo-4 	 10	 123 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := single.Benchmarks["BenchmarkT3_Solo"]; got.NsPerOp != 123 || got.Samples != 0 {
		t.Fatalf("single run = %+v", got)
	}
}

// TestGate: regressions past tolerance fail, within-tolerance pass,
// deleted benchmarks fail, and a vacuous pattern errors.
func TestGate(t *testing.T) {
	base := Report{Benchmarks: map[string]Result{
		"BenchmarkT3_PurchaseBatch": {NsPerOp: 1000},
		"BenchmarkT3_ExchangeBatch": {NsPerOp: 2000},
		"BenchmarkT2_Other":         {NsPerOp: 50},
	}}
	re := regexp.MustCompile(`^BenchmarkT3_.*Batch`)

	cur := Report{Benchmarks: map[string]Result{
		"BenchmarkT3_PurchaseBatch": {NsPerOp: 1050}, // +5%: inside 10%
		"BenchmarkT3_ExchangeBatch": {NsPerOp: 2100}, // +5%
		"BenchmarkT2_Other":         {NsPerOp: 5000}, // unmatched: ignored
	}}
	bad, matched, err := gate(cur, base, re, 0.10)
	if err != nil || len(bad) != 0 || matched != 2 {
		t.Fatalf("clean gate: bad=%v matched=%d err=%v", bad, matched, err)
	}

	cur.Benchmarks["BenchmarkT3_PurchaseBatch"] = Result{NsPerOp: 1200} // +20%
	bad, _, err = gate(cur, base, re, 0.10)
	if err != nil || len(bad) != 1 || !strings.Contains(bad[0], "BenchmarkT3_PurchaseBatch") {
		t.Fatalf("regression not flagged: bad=%v err=%v", bad, err)
	}

	delete(cur.Benchmarks, "BenchmarkT3_ExchangeBatch")
	bad, _, err = gate(cur, base, re, 0.10)
	if err != nil || len(bad) != 2 {
		t.Fatalf("deleted benchmark not flagged: bad=%v err=%v", bad, err)
	}

	if _, _, err := gate(cur, base, regexp.MustCompile(`^BenchmarkT9_`), 0.10); err == nil {
		t.Fatal("vacuous gate pattern did not error")
	}
}
