package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: p2drm
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkT2_PurchaseP2DRM 	    1518	   1618278 ns/op
BenchmarkT3_PurchaseBatch-4 	    1873	    661754 ns/op
BenchmarkT3_DepositParallel/group_commit/shards_16-8 	     500	   2400000 ns/op
BenchmarkBad no numbers here
PASS
ok  	p2drm	13.218s
`
	rep, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "p2drm" {
		t.Fatalf("header fields = %q %q %q", rep.Goos, rep.Goarch, rep.Pkg)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	want := map[string]Result{
		"BenchmarkT2_PurchaseP2DRM":                          {Iterations: 1518, NsPerOp: 1618278},
		"BenchmarkT3_PurchaseBatch":                          {Iterations: 1873, NsPerOp: 661754},
		"BenchmarkT3_DepositParallel/group_commit/shards_16": {Iterations: 500, NsPerOp: 2400000},
	}
	if len(rep.Benchmarks) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(rep.Benchmarks), len(want), rep.Benchmarks)
	}
	for name, w := range want {
		got, ok := rep.Benchmarks[name]
		if !ok {
			t.Fatalf("missing %s in %v", name, rep.Benchmarks)
		}
		if got != w {
			t.Fatalf("%s = %+v, want %+v", name, got, w)
		}
	}
}
