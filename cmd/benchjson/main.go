// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report: benchmark name → ns/op (plus iteration
// counts and the box identification lines), so CI can archive per-PR
// performance snapshots and tooling can diff them without scraping
// bench text.
//
// Usage:
//
//	go test -run '^$' -bench 'T2_|T3_' -benchtime 2s . | benchjson -o BENCH_PR8.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Report is the output schema. Benchmarks maps the benchmark name (the
// trailing -GOMAXPROCS suffix stripped, sub-benchmark paths kept) to
// its result.
type Report struct {
	Goos       string            `json:"goos,omitempty"`
	Goarch     string            `json:"goarch,omitempty"`
	Pkg        string            `json:"pkg,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Result is one benchmark line.
type Result struct {
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op`)

// parse reads `go test -bench` text and collects the report.
func parse(r io.Reader) (Report, error) {
	rep := Report{Benchmarks: make(map[string]Result)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		for _, hdr := range []struct {
			prefix string
			dst    *string
		}{
			{"goos: ", &rep.Goos},
			{"goarch: ", &rep.Goarch},
			{"pkg: ", &rep.Pkg},
			{"cpu: ", &rep.CPU},
		} {
			if v, ok := strings.CutPrefix(line, hdr.prefix); ok {
				*hdr.dst = v
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		rep.Benchmarks[m[1]] = Result{Iterations: iters, NsPerOp: ns}
	}
	return rep, sc.Err()
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		log.Fatalf("benchjson: read: %v", err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("benchjson: no benchmark lines found on stdin")
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: encode: %v", err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}
