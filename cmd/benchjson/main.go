// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report: benchmark name → ns/op (plus iteration
// counts and the box identification lines), so CI can archive per-PR
// performance snapshots and tooling can diff them without scraping
// bench text. A benchmark that appears more than once on stdin (from
// -count=N) is collapsed to its MEDIAN ns/op — the standard defence
// against one noisy run polluting the snapshot.
//
// Usage:
//
//	go test -run '^$' -bench 'T2_|T3_' -benchtime 2s . | benchjson -o BENCH_PR8.json
//
// Gate mode diffs the current run against a committed baseline instead
// of archiving it, failing (exit 1) when any matched benchmark's median
// regressed past the tolerance. It never writes the baseline:
//
//	go test -run '^$' -bench T3_ -count 3 . | \
//	    benchjson -gate BENCH_PR8.json -gate-match '^BenchmarkT3_.*Batch' -gate-tolerance 0.10
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Report is the output schema. Benchmarks maps the benchmark name (the
// trailing -GOMAXPROCS suffix stripped, sub-benchmark paths kept) to
// its result.
type Report struct {
	Goos       string            `json:"goos,omitempty"`
	Goarch     string            `json:"goarch,omitempty"`
	Pkg        string            `json:"pkg,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Result is one benchmark's collapsed report: the median ns/op across
// however many runs stdin carried, with Samples recording how many.
type Result struct {
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	Samples    int     `json:"samples,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op`)

type sample struct {
	iters int64
	ns    float64
}

// parse reads `go test -bench` text and collects the report, collapsing
// repeated lines per benchmark (-count=N) to the median ns/op.
func parse(r io.Reader) (Report, error) {
	rep := Report{Benchmarks: make(map[string]Result)}
	acc := make(map[string][]sample)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		for _, hdr := range []struct {
			prefix string
			dst    *string
		}{
			{"goos: ", &rep.Goos},
			{"goarch: ", &rep.Goarch},
			{"pkg: ", &rep.Pkg},
			{"cpu: ", &rep.CPU},
		} {
			if v, ok := strings.CutPrefix(line, hdr.prefix); ok {
				*hdr.dst = v
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		acc[m[1]] = append(acc[m[1]], sample{iters: iters, ns: ns})
	}
	for name, runs := range acc {
		sort.Slice(runs, func(i, j int) bool { return runs[i].ns < runs[j].ns })
		med := runs[(len(runs)-1)/2] // lower middle for even counts: the faster of the two
		res := Result{Iterations: med.iters, NsPerOp: med.ns}
		if len(runs) > 1 {
			res.Samples = len(runs)
			if len(runs)%2 == 0 {
				res.NsPerOp = (runs[len(runs)/2-1].ns + runs[len(runs)/2].ns) / 2
			}
		}
		rep.Benchmarks[name] = res
	}
	return rep, sc.Err()
}

// gate compares cur against base over the benchmarks matching re and
// returns one line per median regression beyond tol (e.g. 0.10 = 10%).
// A baseline benchmark missing from the current run is a finding too —
// a silently deleted benchmark must not pass the gate. An error is
// returned when the regexp matches nothing in the baseline: a vacuous
// gate guards nothing.
func gate(cur, base Report, re *regexp.Regexp, tol float64) (bad []string, matched int, err error) {
	var names []string
	for name := range base.Benchmarks {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, 0, fmt.Errorf("gate pattern %q matches no baseline benchmark", re)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: missing from current run (baseline %.0f ns/op)", name, b.NsPerOp))
			continue
		}
		if limit := b.NsPerOp * (1 + tol); c.NsPerOp > limit {
			bad = append(bad, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.1f%%, tolerance %.0f%%)",
				name, c.NsPerOp, b.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1), 100*tol))
		}
	}
	return bad, len(names), nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	gateFile := flag.String("gate", "", "baseline JSON to gate against (exit 1 on regression; never written)")
	gateMatch := flag.String("gate-match", "", "regexp selecting which baseline benchmarks the gate checks (default: all)")
	gateTol := flag.Float64("gate-tolerance", 0.10, "allowed median slowdown vs baseline (0.10 = 10%)")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		log.Fatalf("benchjson: read: %v", err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("benchjson: no benchmark lines found on stdin")
	}
	if *out != "" || *gateFile == "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("benchjson: encode: %v", err)
		}
		data = append(data, '\n')
		if *out == "" {
			os.Stdout.Write(data)
		} else {
			if err := os.WriteFile(*out, data, 0o644); err != nil {
				log.Fatalf("benchjson: %v", err)
			}
			fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
		}
	}
	if *gateFile == "" {
		return
	}
	raw, err := os.ReadFile(*gateFile)
	if err != nil {
		log.Fatalf("benchjson: baseline: %v", err)
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		log.Fatalf("benchjson: baseline %s: %v", *gateFile, err)
	}
	re, err := regexp.Compile(*gateMatch)
	if err != nil {
		log.Fatalf("benchjson: -gate-match: %v", err)
	}
	bad, matched, err := gate(rep, base, re, *gateTol)
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	if len(bad) > 0 {
		for _, line := range bad {
			fmt.Fprintln(os.Stderr, "benchjson: REGRESSION "+line)
		}
		os.Exit(1)
	}
	fmt.Printf("benchjson: gate ok against %s (%d benchmarks within %.0f%%)\n",
		*gateFile, matched, 100**gateTol)
}
