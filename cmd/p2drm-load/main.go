// Command p2drm-load drives a live p2drmd topology over HTTP with a
// named traffic scenario and prints a machine-readable JSON report:
// per-operation latency histograms (p50/p90/p99/p999/max), error
// tallies, and achieved vs target RPS.
//
//	p2drm-load -list
//	p2drm-load -primary http://127.0.0.1:8080 -lab -scenario mixed -rps 20 -duration 5s
//	p2drm-load -primary http://127.0.0.1:8080 -replicas http://127.0.0.1:8081 -lab \
//	    -scenario flashcrowd -rps 10 -duration 10s -out report.json
//
// The scenario trace is a pure function of -seed, so runs are
// reproducible; reads a replica can serve (stats, revocation checks)
// round-robin across -replicas, writes always hit -primary.
//
// The primary's /v2/stats and /v2/metrics are sampled immediately
// before and after the run, so the report pairs the client-observed
// latency histograms with the server-observed ones (rebuilt from the
// Prometheus scrape delta) and attributes engine work — fsyncs, logged
// bytes, crypto pool hits — to the run rather than to the daemon's
// lifetime.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"p2drm/internal/cryptox/schnorr"
	"p2drm/internal/httpapi"
	"p2drm/internal/kvstore"
	"p2drm/internal/obs"
	"p2drm/internal/workload"
)

// Report is the command's JSON output envelope.
type Report struct {
	Scenario string               `json:"scenario"`
	Seed     int64                `json:"seed"`
	Users    int                  `json:"users"`
	Primary  string               `json:"primary"`
	Replicas []string             `json:"replicas,omitempty"`
	Phases   []workload.Phase     `json:"phases"`
	Result   *workload.LoadResult `json:"result"`
	// ServerStatsStart/ServerStats are the primary's /v2/stats snapshots
	// sampled right before and right after the run: store engine gauges
	// plus the crypto acceleration state (pool depth and hit rate,
	// batch-verify counters). Either is absent when its call fails — the
	// run result stands on its own.
	ServerStatsStart *httpapi.StatsResponse `json:"server_stats_start,omitempty"`
	ServerStats      *httpapi.StatsResponse `json:"server_stats,omitempty"`
	// ServerDelta attributes the engine work between the two snapshots to
	// this run, and carries the server-observed HTTP latency percentiles
	// rebuilt from the /v2/metrics scrape pair.
	ServerDelta *ServerDelta `json:"server_delta,omitempty"`
}

// ServerDelta is what the primary did DURING the run: element-wise
// differences of the /v2/stats engine counters, crypto accelerator
// counter deltas, and the server-side HTTP request-latency histogram
// reconstructed from the Prometheus bucket deltas between the start and
// end scrapes. Pairing HTTPLatency with Result's client histograms
// separates queueing/network time from server processing time.
type ServerDelta struct {
	Stores      map[string]kvstore.Stats `json:"stores,omitempty"`
	Crypto      *CryptoDelta             `json:"crypto,omitempty"`
	HTTPLatency *obs.HistSummary         `json:"http_latency_seconds,omitempty"`
}

// CryptoDelta is the run's share of the provider's crypto accelerator
// counters.
type CryptoDelta struct {
	BatchVerifyRuns     uint64 `json:"batch_verify_runs"`
	BatchVerifyItems    uint64 `json:"batch_verify_items"`
	BatchVerifyRejected uint64 `json:"batch_verify_rejected"`
	NonceHits           uint64 `json:"nonce_hits"`
	NonceMisses         uint64 `json:"nonce_misses"`
}

// scrapeMetrics fetches and parses /v2/metrics; nil (with a log line)
// when the endpoint is unavailable, e.g. against a pre-metrics daemon.
func scrapeMetrics(c *httpapi.Client, when string) *obs.Metrics {
	raw, err := c.MetricsV2()
	if err != nil {
		log.Printf("p2drm-load: %s metrics scrape unavailable: %v", when, err)
		return nil
	}
	m, err := obs.ParseMetrics(bytes.NewReader(raw))
	if err != nil {
		log.Printf("p2drm-load: %s metrics scrape unparsable: %v", when, err)
		return nil
	}
	return m
}

// statsDelta computes end-start over the engine counters and crypto
// counters. Gauge-like fields (LiveKeys, Segments) are differenced too:
// the result reads as "grew by N during the run" and may be negative
// after compaction.
func statsDelta(start, end *httpapi.StatsResponse) *ServerDelta {
	if start == nil || end == nil {
		return nil
	}
	d := &ServerDelta{Stores: make(map[string]kvstore.Stats, len(end.Stores))}
	for name, e := range end.Stores {
		s := start.Stores[name] // zero value if the store is new
		d.Stores[name] = kvstore.Stats{
			Segments:        e.Segments - s.Segments,
			LiveKeys:        e.LiveKeys - s.LiveKeys,
			LiveBytes:       e.LiveBytes - s.LiveBytes,
			LoggedBytes:     e.LoggedBytes - s.LoggedBytes,
			DeadBytes:       e.DeadBytes - s.DeadBytes,
			Compactions:     e.Compactions - s.Compactions,
			CompactionSkips: e.CompactionSkips - s.CompactionSkips,
			IndexShards:     e.IndexShards,
		}
	}
	if sc, ec := start.Crypto, end.Crypto; sc != nil && ec != nil {
		cd := &CryptoDelta{
			BatchVerifyRuns:     ec.BatchVerifyRuns - sc.BatchVerifyRuns,
			BatchVerifyItems:    ec.BatchVerifyItems - sc.BatchVerifyItems,
			BatchVerifyRejected: ec.BatchVerifyRejected - sc.BatchVerifyRejected,
		}
		if sc.NoncePool != nil && ec.NoncePool != nil {
			cd.NonceHits = ec.NoncePool.Hits - sc.NoncePool.Hits
			cd.NonceMisses = ec.NoncePool.Misses - sc.NoncePool.Misses
		}
		d.Crypto = cd
	}
	return d
}

func main() {
	log.SetFlags(0)
	var (
		primary  = flag.String("primary", "http://127.0.0.1:8080", "primary daemon base URL (writes and primary-only reads)")
		replicas = flag.String("replicas", "", "comma-separated replica base URLs (serve stats/revocation reads)")
		scenario = flag.String("scenario", "mixed", "scenario name (see -list)")
		list     = flag.Bool("list", false, "list scenarios and exit")
		rps      = flag.Float64("rps", 20, "base arrival rate (open loop)")
		duration = flag.Duration("duration", 5*time.Second, "total schedule length")
		conc     = flag.Int("concurrency", 64, "max in-flight requests; excess arrivals are shed")
		users    = flag.Int("users", 16, "simulated user population")
		contents = flag.Int("contents", 8, "catalog slots the trace spreads over")
		ops      = flag.Int("ops", 0, "trace length (default: enough to cover the schedule)")
		seed     = flag.Int64("seed", 1, "trace seed (same seed, same request trace)")
		readFrac = flag.Float64("read-fraction", 0.9, "read share for the mixed scenario")
		token    = flag.String("token", "", "bearer token for user-tier endpoints (register/purchase/withdraw)")
		admin    = flag.String("admin-token", "", "bearer token for account creation (defaults to -token)")
		lab      = flag.Bool("lab", false, "laboratory group parameters (match p2drmd -lab)")
		funds    = flag.Int64("funds", 0, "per-user account balance (default 1e6)")
		prefix   = flag.String("account-prefix", "", "bank account namespace (default: random per run)")
		out      = flag.String("out", "", "write the JSON report to this file instead of stdout")
	)
	flag.Parse()

	if *list {
		for _, s := range workload.Scenarios {
			fmt.Printf("%-12s %s\n", s.Name, s.Desc)
		}
		return
	}

	s, err := workload.FindScenario(*scenario)
	if err != nil {
		log.Fatalf("p2drm-load: %v", err)
	}
	group := schnorr.Group2048()
	if *lab {
		group = schnorr.Group768()
	}
	mkClient := func(url, tok string) *httpapi.Client {
		c := httpapi.NewClient(url, group)
		c.Token = tok
		return c
	}
	topo := workload.Topology{Primary: mkClient(*primary, *token)}
	var replicaURLs []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			replicaURLs = append(replicaURLs, u)
			topo.Replicas = append(topo.Replicas, mkClient(u, *token))
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Account creation is admin-tier; run it with the stronger token
	// while load traffic keeps the user token.
	if *admin == "" {
		*admin = *token
	}
	ex, err := workload.NewExecutor(ctx, topo, *users, *seed, workload.ExecOptions{
		AccountPrefix: *prefix,
		Funds:         *funds,
		Admin:         mkClient(*primary, *admin),
	})
	if err != nil {
		log.Fatalf("p2drm-load: setup: %v", err)
	}

	cfg := workload.ScenarioConfig{
		Seed:         *seed,
		Users:        *users,
		Contents:     *contents,
		Ops:          *ops,
		RPS:          *rps,
		Duration:     *duration,
		ReadFraction: *readFrac,
		MaxInFlight:  *conc,
	}
	// Snapshot the server view AFTER executor setup (account creation,
	// withdrawals) so the delta covers exactly the scenario traffic.
	startStats, err := topo.Primary.StatsV2()
	if err != nil {
		log.Printf("p2drm-load: start stats snapshot unavailable: %v", err)
		startStats = nil
	}
	startMetrics := scrapeMetrics(topo.Primary, "start")

	log.Printf("p2drm-load: scenario %q against %s (%d replicas), %g rps for %s",
		s.Name, *primary, len(topo.Replicas), *rps, *duration)
	res, err := ex.RunScenario(ctx, s, cfg)
	if err != nil {
		log.Fatalf("p2drm-load: %v", err)
	}

	rep := Report{
		Scenario: s.Name,
		Seed:     *seed,
		Users:    *users,
		Primary:  *primary,
		Replicas: replicaURLs,
		Phases:   s.Schedule(cfg),
		Result:   res,
	}
	rep.ServerStatsStart = startStats
	if st, err := topo.Primary.StatsV2(); err != nil {
		log.Printf("p2drm-load: server stats snapshot unavailable: %v", err)
	} else {
		rep.ServerStats = st
	}
	rep.ServerDelta = statsDelta(rep.ServerStatsStart, rep.ServerStats)
	if endMetrics := scrapeMetrics(topo.Primary, "end"); startMetrics != nil && endMetrics != nil {
		if sum, ok := obs.HistogramDelta(startMetrics, endMetrics,
			"p2drm_http_request_duration_seconds", nil); ok {
			if rep.ServerDelta == nil {
				rep.ServerDelta = &ServerDelta{}
			}
			rep.ServerDelta.HTTPLatency = &sum
		}
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("p2drm-load: encode report: %v", err)
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			log.Fatalf("p2drm-load: %v", err)
		}
	} else {
		os.Stdout.Write(enc)
	}
	for _, kind := range res.Kinds() {
		sum := res.Ops[kind]
		log.Printf("p2drm-load: %-18s n=%-6d err=%-4d p50=%s p99=%s p999=%s",
			kind, sum.Count, sum.Errors, sum.Latency.P50S, sum.Latency.P99S, sum.Latency.P999S)
	}
	if d := rep.ServerDelta; d != nil && d.HTTPLatency != nil {
		h := d.HTTPLatency
		log.Printf("p2drm-load: server-side http      n=%-6d p50=%s p99=%s p999=%s",
			h.Count, time.Duration(h.P50*1e9), time.Duration(h.P99*1e9), time.Duration(h.P999*1e9))
	}
	if res.Errors > 0 {
		os.Exit(1)
	}
}
