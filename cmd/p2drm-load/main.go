// Command p2drm-load drives a live p2drmd topology over HTTP with a
// named traffic scenario and prints a machine-readable JSON report:
// per-operation latency histograms (p50/p90/p99/p999/max), error
// tallies, and achieved vs target RPS.
//
//	p2drm-load -list
//	p2drm-load -primary http://127.0.0.1:8080 -lab -scenario mixed -rps 20 -duration 5s
//	p2drm-load -primary http://127.0.0.1:8080 -replicas http://127.0.0.1:8081 -lab \
//	    -scenario flashcrowd -rps 10 -duration 10s -out report.json
//
// The scenario trace is a pure function of -seed, so runs are
// reproducible; reads a replica can serve (stats, revocation checks)
// round-robin across -replicas, writes always hit -primary.
//
// The primary's /v2/stats and /v2/metrics are sampled immediately
// before and after the run, so the report pairs the client-observed
// latency histograms with the server-observed ones (rebuilt from the
// Prometheus scrape delta) and attributes engine work — fsyncs, logged
// bytes, crypto pool hits — to the run rather than to the daemon's
// lifetime.
//
// Two saturation modes ride on the same executor:
//
//	-sweep steps the arrival rate geometrically (-sweep-start ×
//	-sweep-factor, up to -sweep-steps) running one -duration step at
//	each rate, and stops at the first step that sheds arrivals,
//	misses -slo-availability, blows -slo-p99, or flips the server's
//	/v2/health to 503. The JSON capacity curve names the last
//	sustainable rate and the breach that ended the climb. Errors at
//	saturation are the measurement, not a failure: sweep exits 0.
//
//	-soak runs the ordinary scenario but samples the merged latency
//	histogram every -soak-interval and reports the per-interval view
//	(hist deltas, not cumulative), so drift over a long run — leaks,
//	compaction stalls, pool exhaustion — shows up as a time series.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"p2drm/internal/cryptox/schnorr"
	"p2drm/internal/httpapi"
	"p2drm/internal/kvstore"
	"p2drm/internal/obs"
	"p2drm/internal/workload"
	"p2drm/internal/workload/hist"
)

// Report is the command's JSON output envelope.
type Report struct {
	Scenario string               `json:"scenario"`
	Seed     int64                `json:"seed"`
	Users    int                  `json:"users"`
	Primary  string               `json:"primary"`
	Replicas []string             `json:"replicas,omitempty"`
	Phases   []workload.Phase     `json:"phases"`
	Result   *workload.LoadResult `json:"result"`
	// ServerStatsStart/ServerStats are the primary's /v2/stats snapshots
	// sampled right before and right after the run: store engine gauges
	// plus the crypto acceleration state (pool depth and hit rate,
	// batch-verify counters). Either is absent when its call fails — the
	// run result stands on its own.
	ServerStatsStart *httpapi.StatsResponse `json:"server_stats_start,omitempty"`
	ServerStats      *httpapi.StatsResponse `json:"server_stats,omitempty"`
	// ServerDelta attributes the engine work between the two snapshots to
	// this run, and carries the server-observed HTTP latency percentiles
	// rebuilt from the /v2/metrics scrape pair.
	ServerDelta *ServerDelta `json:"server_delta,omitempty"`
	// Soak is the per-interval latency series (-soak mode only): each
	// point covers just its interval, not the run so far.
	Soak []SoakPoint `json:"soak,omitempty"`
}

// SoakPoint is one -soak interval: counts and the latency summary for
// the requests that completed during that interval alone (consecutive
// cumulative snapshots differenced via hist.Sub).
type SoakPoint struct {
	Elapsed  time.Duration `json:"elapsed_ns"`
	ElapsedS string        `json:"elapsed"`
	Sent     int64         `json:"sent"`
	Errors   int64         `json:"errors"`
	Shed     int64         `json:"shed"`
	Latency  hist.Summary  `json:"latency"`
}

// SweepReport is the -sweep mode's JSON output: the capacity curve.
type SweepReport struct {
	Scenario        string        `json:"scenario"`
	Seed            int64         `json:"seed"`
	Primary         string        `json:"primary"`
	StepDuration    time.Duration `json:"step_duration_ns"`
	SLOP99          time.Duration `json:"slo_p99_ns"`
	SLOAvailability float64       `json:"slo_availability"`
	Steps           []SweepStep   `json:"steps"`
	// StopReason names what ended the climb: shed, slo-availability,
	// slo-latency, health, cancelled, or max-steps.
	StopReason string `json:"stop_reason"`
	// CapacityRPS is the highest achieved rate of a step that met every
	// criterion (0 if even the first step breached).
	CapacityRPS float64 `json:"capacity_rps"`
}

// SweepStep is one rung of the capacity ladder.
type SweepStep struct {
	Step         int           `json:"step"`
	TargetRPS    float64       `json:"target_rps"`
	AchievedRPS  float64       `json:"achieved_rps"`
	Sent         int64         `json:"sent"`
	Errors       int64         `json:"errors"`
	Shed         int64         `json:"shed"`
	Availability float64       `json:"availability"`
	P50          time.Duration `json:"p50_ns"`
	P99          time.Duration `json:"p99_ns"`
	P99S         string        `json:"p99"`
	// Health is the server's aggregate /v2/health verdict sampled right
	// after the step ("unavailable" against a pre-health daemon).
	Health     string `json:"health"`
	HealthCode int    `json:"health_code,omitempty"`
	// Breach names the first criterion this step failed, empty if none.
	Breach string `json:"breach,omitempty"`
}

// ServerDelta is what the primary did DURING the run: element-wise
// differences of the /v2/stats engine counters, crypto accelerator
// counter deltas, and the server-side HTTP request-latency histogram
// reconstructed from the Prometheus bucket deltas between the start and
// end scrapes. Pairing HTTPLatency with Result's client histograms
// separates queueing/network time from server processing time.
type ServerDelta struct {
	Stores      map[string]kvstore.Stats `json:"stores,omitempty"`
	Crypto      *CryptoDelta             `json:"crypto,omitempty"`
	HTTPLatency *obs.HistSummary         `json:"http_latency_seconds,omitempty"`
}

// CryptoDelta is the run's share of the provider's crypto accelerator
// counters.
type CryptoDelta struct {
	BatchVerifyRuns     uint64 `json:"batch_verify_runs"`
	BatchVerifyItems    uint64 `json:"batch_verify_items"`
	BatchVerifyRejected uint64 `json:"batch_verify_rejected"`
	NonceHits           uint64 `json:"nonce_hits"`
	NonceMisses         uint64 `json:"nonce_misses"`
}

// scrapeMetrics fetches and parses /v2/metrics; nil (with a log line)
// when the endpoint is unavailable, e.g. against a pre-metrics daemon.
func scrapeMetrics(c *httpapi.Client, when string) *obs.Metrics {
	raw, err := c.MetricsV2()
	if err != nil {
		log.Printf("p2drm-load: %s metrics scrape unavailable: %v", when, err)
		return nil
	}
	m, err := obs.ParseMetrics(bytes.NewReader(raw))
	if err != nil {
		log.Printf("p2drm-load: %s metrics scrape unparsable: %v", when, err)
		return nil
	}
	return m
}

// statsDelta computes end-start over the engine counters and crypto
// counters. Gauge-like fields (LiveKeys, Segments) are differenced too:
// the result reads as "grew by N during the run" and may be negative
// after compaction.
func statsDelta(start, end *httpapi.StatsResponse) *ServerDelta {
	if start == nil || end == nil {
		return nil
	}
	d := &ServerDelta{Stores: make(map[string]kvstore.Stats, len(end.Stores))}
	for name, e := range end.Stores {
		s := start.Stores[name] // zero value if the store is new
		d.Stores[name] = kvstore.Stats{
			Segments:        e.Segments - s.Segments,
			LiveKeys:        e.LiveKeys - s.LiveKeys,
			LiveBytes:       e.LiveBytes - s.LiveBytes,
			LoggedBytes:     e.LoggedBytes - s.LoggedBytes,
			DeadBytes:       e.DeadBytes - s.DeadBytes,
			Compactions:     e.Compactions - s.Compactions,
			CompactionSkips: e.CompactionSkips - s.CompactionSkips,
			IndexShards:     e.IndexShards,
		}
	}
	if sc, ec := start.Crypto, end.Crypto; sc != nil && ec != nil {
		cd := &CryptoDelta{
			BatchVerifyRuns:     ec.BatchVerifyRuns - sc.BatchVerifyRuns,
			BatchVerifyItems:    ec.BatchVerifyItems - sc.BatchVerifyItems,
			BatchVerifyRejected: ec.BatchVerifyRejected - sc.BatchVerifyRejected,
		}
		if sc.NoncePool != nil && ec.NoncePool != nil {
			cd.NonceHits = ec.NoncePool.Hits - sc.NoncePool.Hits
			cd.NonceMisses = ec.NoncePool.Misses - sc.NoncePool.Misses
		}
		d.Crypto = cd
	}
	return d
}

func main() {
	log.SetFlags(0)
	var (
		primary  = flag.String("primary", "http://127.0.0.1:8080", "primary daemon base URL (writes and primary-only reads)")
		replicas = flag.String("replicas", "", "comma-separated replica base URLs (serve stats/revocation reads)")
		scenario = flag.String("scenario", "mixed", "scenario name (see -list)")
		list     = flag.Bool("list", false, "list scenarios and exit")
		rps      = flag.Float64("rps", 20, "base arrival rate (open loop)")
		duration = flag.Duration("duration", 5*time.Second, "total schedule length")
		conc     = flag.Int("concurrency", 64, "max in-flight requests; excess arrivals are shed")
		users    = flag.Int("users", 16, "simulated user population")
		contents = flag.Int("contents", 8, "catalog slots the trace spreads over")
		ops      = flag.Int("ops", 0, "trace length (default: enough to cover the schedule)")
		seed     = flag.Int64("seed", 1, "trace seed (same seed, same request trace)")
		readFrac = flag.Float64("read-fraction", 0.9, "read share for the mixed scenario")
		token    = flag.String("token", "", "bearer token for user-tier endpoints (register/purchase/withdraw)")
		admin    = flag.String("admin-token", "", "bearer token for account creation (defaults to -token)")
		lab      = flag.Bool("lab", false, "laboratory group parameters (match p2drmd -lab)")
		funds    = flag.Int64("funds", 0, "per-user account balance (default 1e6)")
		prefix   = flag.String("account-prefix", "", "bank account namespace (default: random per run)")
		out      = flag.String("out", "", "write the JSON report to this file instead of stdout")

		sweep        = flag.Bool("sweep", false, "capacity sweep: step RPS geometrically until shed, SLO breach, or server 503; emits the capacity curve JSON")
		sweepStart   = flag.Float64("sweep-start", 0, "first sweep step RPS (default -rps)")
		sweepFactor  = flag.Float64("sweep-factor", 1.5, "RPS multiplier between sweep steps")
		sweepSteps   = flag.Int("sweep-steps", 8, "maximum sweep steps")
		sloP99       = flag.Duration("slo-p99", 250*time.Millisecond, "client-observed p99 objective a sweep step must stay under")
		sloAvail     = flag.Float64("slo-availability", 0.999, "availability objective (1 - errors/sent) a sweep step must meet")
		soak         = flag.Bool("soak", false, "sample the run periodically and report per-interval latency (drift detection)")
		soakInterval = flag.Duration("soak-interval", 10*time.Second, "snapshot interval for -soak")
	)
	flag.Parse()

	if *list {
		for _, s := range workload.Scenarios {
			fmt.Printf("%-12s %s\n", s.Name, s.Desc)
		}
		return
	}

	s, err := workload.FindScenario(*scenario)
	if err != nil {
		log.Fatalf("p2drm-load: %v", err)
	}
	group := schnorr.Group2048()
	if *lab {
		group = schnorr.Group768()
	}
	mkClient := func(url, tok string) *httpapi.Client {
		c := httpapi.NewClient(url, group)
		c.Token = tok
		return c
	}
	topo := workload.Topology{Primary: mkClient(*primary, *token)}
	var replicaURLs []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			replicaURLs = append(replicaURLs, u)
			topo.Replicas = append(topo.Replicas, mkClient(u, *token))
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Account creation is admin-tier; run it with the stronger token
	// while load traffic keeps the user token.
	if *admin == "" {
		*admin = *token
	}
	ex, err := workload.NewExecutor(ctx, topo, *users, *seed, workload.ExecOptions{
		AccountPrefix: *prefix,
		Funds:         *funds,
		Admin:         mkClient(*primary, *admin),
	})
	if err != nil {
		log.Fatalf("p2drm-load: setup: %v", err)
	}

	cfg := workload.ScenarioConfig{
		Seed:         *seed,
		Users:        *users,
		Contents:     *contents,
		Ops:          *ops,
		RPS:          *rps,
		Duration:     *duration,
		ReadFraction: *readFrac,
		MaxInFlight:  *conc,
	}

	if *sweep {
		runSweep(ctx, ex, s, cfg, topo, sweepParams{
			start:    *sweepStart,
			factor:   *sweepFactor,
			steps:    *sweepSteps,
			sloP99:   *sloP99,
			sloAvail: *sloAvail,
			primary:  *primary,
			out:      *out,
		})
		return
	}

	var soakPoints []SoakPoint
	if *soak {
		var prev workload.SamplePoint
		cfg.SampleEvery = *soakInterval
		cfg.OnSample = func(sp workload.SamplePoint) {
			// Difference against the previous cumulative snapshot: each
			// point stands for its interval alone.
			d := hist.Sub(sp.Hist, prev.Hist)
			soakPoints = append(soakPoints, SoakPoint{
				Elapsed:  sp.Elapsed,
				ElapsedS: sp.Elapsed.Round(time.Millisecond).String(),
				Sent:     sp.Sent - prev.Sent,
				Errors:   sp.Errors - prev.Errors,
				Shed:     sp.Shed - prev.Shed,
				Latency:  d.Snapshot(),
			})
			prev = sp
		}
	}

	// Snapshot the server view AFTER executor setup (account creation,
	// withdrawals) so the delta covers exactly the scenario traffic.
	startStats, err := topo.Primary.StatsV2()
	if err != nil {
		log.Printf("p2drm-load: start stats snapshot unavailable: %v", err)
		startStats = nil
	}
	startMetrics := scrapeMetrics(topo.Primary, "start")

	log.Printf("p2drm-load: scenario %q against %s (%d replicas), %g rps for %s",
		s.Name, *primary, len(topo.Replicas), *rps, *duration)
	res, err := ex.RunScenario(ctx, s, cfg)
	if err != nil {
		log.Fatalf("p2drm-load: %v", err)
	}

	rep := Report{
		Scenario: s.Name,
		Seed:     *seed,
		Users:    *users,
		Primary:  *primary,
		Replicas: replicaURLs,
		Phases:   s.Schedule(cfg),
		Result:   res,
		Soak:     soakPoints,
	}
	rep.ServerStatsStart = startStats
	if st, err := topo.Primary.StatsV2(); err != nil {
		log.Printf("p2drm-load: server stats snapshot unavailable: %v", err)
	} else {
		rep.ServerStats = st
	}
	rep.ServerDelta = statsDelta(rep.ServerStatsStart, rep.ServerStats)
	if endMetrics := scrapeMetrics(topo.Primary, "end"); startMetrics != nil && endMetrics != nil {
		if sum, ok := obs.HistogramDelta(startMetrics, endMetrics,
			"p2drm_http_request_duration_seconds", nil); ok {
			if rep.ServerDelta == nil {
				rep.ServerDelta = &ServerDelta{}
			}
			rep.ServerDelta.HTTPLatency = &sum
		}
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("p2drm-load: encode report: %v", err)
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			log.Fatalf("p2drm-load: %v", err)
		}
	} else {
		os.Stdout.Write(enc)
	}
	for _, kind := range res.Kinds() {
		sum := res.Ops[kind]
		log.Printf("p2drm-load: %-18s n=%-6d err=%-4d p50=%s p99=%s p999=%s",
			kind, sum.Count, sum.Errors, sum.Latency.P50S, sum.Latency.P99S, sum.Latency.P999S)
	}
	if d := rep.ServerDelta; d != nil && d.HTTPLatency != nil {
		h := d.HTTPLatency
		log.Printf("p2drm-load: server-side http      n=%-6d p50=%s p99=%s p999=%s",
			h.Count, time.Duration(h.P50*1e9), time.Duration(h.P99*1e9), time.Duration(h.P999*1e9))
	}
	for _, sp := range soakPoints {
		log.Printf("p2drm-load: soak %-10s n=%-6d err=%-4d shed=%-4d p50=%s p99=%s",
			sp.ElapsedS, sp.Sent, sp.Errors, sp.Shed, sp.Latency.P50S, sp.Latency.P99S)
	}
	if res.Errors > 0 {
		os.Exit(1)
	}
}

// sweepParams bundles the -sweep knobs.
type sweepParams struct {
	start    float64
	factor   float64
	steps    int
	sloP99   time.Duration
	sloAvail float64
	primary  string
	out      string
}

// mergedHist folds every op kind's histogram into one client-side view.
func mergedHist(res *workload.LoadResult) *hist.Hist {
	m := hist.New()
	for _, kind := range res.Kinds() {
		m.Merge(res.Hist(workload.OpKind(kind)))
	}
	return m
}

// runSweep climbs the RPS ladder one scenario run per step and stops at
// the first step that sheds, misses the SLO, or flips the server's
// health to 503. Errors at saturation are the measurement — the sweep
// exits 0 unless it cannot even run.
func runSweep(ctx context.Context, ex *workload.Executor, s *workload.Scenario,
	cfg workload.ScenarioConfig, topo workload.Topology, p sweepParams) {
	if p.start <= 0 {
		p.start = cfg.RPS
	}
	if p.factor <= 1 {
		p.factor = 1.5
	}
	if p.steps <= 0 {
		p.steps = 8
	}
	rep := SweepReport{
		Scenario:        s.Name,
		Seed:            cfg.Seed,
		Primary:         p.primary,
		StepDuration:    cfg.Duration,
		SLOP99:          p.sloP99,
		SLOAvailability: p.sloAvail,
	}
	for i := 0; i < p.steps && ctx.Err() == nil; i++ {
		stepCfg := cfg
		stepCfg.RPS = p.start * math.Pow(p.factor, float64(i))
		log.Printf("p2drm-load: sweep step %d/%d at %.1f rps for %s",
			i+1, p.steps, stepCfg.RPS, cfg.Duration)
		res, err := ex.RunScenario(ctx, s, stepCfg)
		if err != nil {
			log.Fatalf("p2drm-load: sweep step %d: %v", i+1, err)
		}
		merged := mergedHist(res)
		avail := 1.0
		if res.Sent > 0 {
			avail = 1 - float64(res.Errors)/float64(res.Sent)
		}
		p99 := time.Duration(merged.Quantile(0.99))
		st := SweepStep{
			Step:         i + 1,
			TargetRPS:    stepCfg.RPS,
			AchievedRPS:  res.AchievedRPS,
			Sent:         res.Sent,
			Errors:       res.Errors,
			Shed:         res.Shed,
			Availability: avail,
			P50:          time.Duration(merged.Quantile(0.50)),
			P99:          p99,
			P99S:         p99.Round(time.Microsecond).String(),
		}
		if hr, code, err := topo.Primary.HealthV2(); err != nil {
			st.Health = "unavailable"
		} else {
			st.Health, st.HealthCode = hr.Status, code
		}
		switch {
		case res.Shed > 0:
			st.Breach = "shed"
		case avail < p.sloAvail:
			st.Breach = "slo-availability"
		case p99 > p.sloP99:
			st.Breach = "slo-latency"
		case st.HealthCode == http.StatusServiceUnavailable:
			st.Breach = "health"
		}
		rep.Steps = append(rep.Steps, st)
		log.Printf("p2drm-load: sweep step %d: achieved %.1f rps, p99=%s, avail=%.4f, shed=%d, health=%s%s",
			st.Step, st.AchievedRPS, st.P99S, st.Availability, st.Shed, st.Health,
			map[bool]string{true: " BREACH:" + st.Breach, false: ""}[st.Breach != ""])
		if st.Breach != "" {
			rep.StopReason = st.Breach
			break
		}
		rep.CapacityRPS = st.AchievedRPS
	}
	if rep.StopReason == "" {
		if ctx.Err() != nil {
			rep.StopReason = "cancelled"
		} else {
			rep.StopReason = "max-steps"
		}
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("p2drm-load: encode sweep report: %v", err)
	}
	enc = append(enc, '\n')
	if p.out != "" {
		if err := os.WriteFile(p.out, enc, 0o644); err != nil {
			log.Fatalf("p2drm-load: %v", err)
		}
	} else {
		os.Stdout.Write(enc)
	}
	log.Printf("p2drm-load: sweep done: capacity %.1f rps, stop reason %q after %d steps",
		rep.CapacityRPS, rep.StopReason, len(rep.Steps))
}
