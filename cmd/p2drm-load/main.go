// Command p2drm-load drives a live p2drmd topology over HTTP with a
// named traffic scenario and prints a machine-readable JSON report:
// per-operation latency histograms (p50/p90/p99/p999/max), error
// tallies, and achieved vs target RPS.
//
//	p2drm-load -list
//	p2drm-load -primary http://127.0.0.1:8080 -lab -scenario mixed -rps 20 -duration 5s
//	p2drm-load -primary http://127.0.0.1:8080 -replicas http://127.0.0.1:8081 -lab \
//	    -scenario flashcrowd -rps 10 -duration 10s -out report.json
//
// The scenario trace is a pure function of -seed, so runs are
// reproducible; reads a replica can serve (stats, revocation checks)
// round-robin across -replicas, writes always hit -primary.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"p2drm/internal/cryptox/schnorr"
	"p2drm/internal/httpapi"
	"p2drm/internal/workload"
)

// Report is the command's JSON output envelope.
type Report struct {
	Scenario string               `json:"scenario"`
	Seed     int64                `json:"seed"`
	Users    int                  `json:"users"`
	Primary  string               `json:"primary"`
	Replicas []string             `json:"replicas,omitempty"`
	Phases   []workload.Phase     `json:"phases"`
	Result   *workload.LoadResult `json:"result"`
	// ServerStats is the primary's /v2/stats snapshot sampled right after
	// the run: store engine gauges plus the crypto acceleration state
	// (pool depth and hit rate, batch-verify counters), so a load report
	// records how much of the run was served precomputed. Absent when the
	// stats call fails — the run result stands on its own.
	ServerStats *httpapi.StatsResponse `json:"server_stats,omitempty"`
}

func main() {
	log.SetFlags(0)
	var (
		primary  = flag.String("primary", "http://127.0.0.1:8080", "primary daemon base URL (writes and primary-only reads)")
		replicas = flag.String("replicas", "", "comma-separated replica base URLs (serve stats/revocation reads)")
		scenario = flag.String("scenario", "mixed", "scenario name (see -list)")
		list     = flag.Bool("list", false, "list scenarios and exit")
		rps      = flag.Float64("rps", 20, "base arrival rate (open loop)")
		duration = flag.Duration("duration", 5*time.Second, "total schedule length")
		conc     = flag.Int("concurrency", 64, "max in-flight requests; excess arrivals are shed")
		users    = flag.Int("users", 16, "simulated user population")
		contents = flag.Int("contents", 8, "catalog slots the trace spreads over")
		ops      = flag.Int("ops", 0, "trace length (default: enough to cover the schedule)")
		seed     = flag.Int64("seed", 1, "trace seed (same seed, same request trace)")
		readFrac = flag.Float64("read-fraction", 0.9, "read share for the mixed scenario")
		token    = flag.String("token", "", "bearer token for user-tier endpoints (register/purchase/withdraw)")
		admin    = flag.String("admin-token", "", "bearer token for account creation (defaults to -token)")
		lab      = flag.Bool("lab", false, "laboratory group parameters (match p2drmd -lab)")
		funds    = flag.Int64("funds", 0, "per-user account balance (default 1e6)")
		prefix   = flag.String("account-prefix", "", "bank account namespace (default: random per run)")
		out      = flag.String("out", "", "write the JSON report to this file instead of stdout")
	)
	flag.Parse()

	if *list {
		for _, s := range workload.Scenarios {
			fmt.Printf("%-12s %s\n", s.Name, s.Desc)
		}
		return
	}

	s, err := workload.FindScenario(*scenario)
	if err != nil {
		log.Fatalf("p2drm-load: %v", err)
	}
	group := schnorr.Group2048()
	if *lab {
		group = schnorr.Group768()
	}
	mkClient := func(url, tok string) *httpapi.Client {
		c := httpapi.NewClient(url, group)
		c.Token = tok
		return c
	}
	topo := workload.Topology{Primary: mkClient(*primary, *token)}
	var replicaURLs []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			replicaURLs = append(replicaURLs, u)
			topo.Replicas = append(topo.Replicas, mkClient(u, *token))
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Account creation is admin-tier; run it with the stronger token
	// while load traffic keeps the user token.
	if *admin == "" {
		*admin = *token
	}
	ex, err := workload.NewExecutor(ctx, topo, *users, *seed, workload.ExecOptions{
		AccountPrefix: *prefix,
		Funds:         *funds,
		Admin:         mkClient(*primary, *admin),
	})
	if err != nil {
		log.Fatalf("p2drm-load: setup: %v", err)
	}

	cfg := workload.ScenarioConfig{
		Seed:         *seed,
		Users:        *users,
		Contents:     *contents,
		Ops:          *ops,
		RPS:          *rps,
		Duration:     *duration,
		ReadFraction: *readFrac,
		MaxInFlight:  *conc,
	}
	log.Printf("p2drm-load: scenario %q against %s (%d replicas), %g rps for %s",
		s.Name, *primary, len(topo.Replicas), *rps, *duration)
	res, err := ex.RunScenario(ctx, s, cfg)
	if err != nil {
		log.Fatalf("p2drm-load: %v", err)
	}

	rep := Report{
		Scenario: s.Name,
		Seed:     *seed,
		Users:    *users,
		Primary:  *primary,
		Replicas: replicaURLs,
		Phases:   s.Schedule(cfg),
		Result:   res,
	}
	if st, err := topo.Primary.StatsV2(); err != nil {
		log.Printf("p2drm-load: server stats snapshot unavailable: %v", err)
	} else {
		rep.ServerStats = st
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("p2drm-load: encode report: %v", err)
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			log.Fatalf("p2drm-load: %v", err)
		}
	} else {
		os.Stdout.Write(enc)
	}
	for _, kind := range res.Kinds() {
		sum := res.Ops[kind]
		log.Printf("p2drm-load: %-18s n=%-6d err=%-4d p50=%s p99=%s p999=%s",
			kind, sum.Count, sum.Errors, sum.Latency.P50S, sum.Latency.P99S, sum.Latency.P999S)
	}
	if res.Errors > 0 {
		os.Exit(1)
	}
}
