package main

// load-smoke: build the real binaries, boot a primary + one replica,
// drive a short mixed scenario at low RPS through p2drm-load, and fail
// on any non-2xx (the command exits non-zero if the report counts any
// error) or on an empty histogram in the parsed report. This is the
// end-to-end proof that the load harness, the daemon topology, and the
// replica read routing compose.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"p2drm/internal/obs"
	"p2drm/internal/workload"
)

// freePort reserves an ephemeral port long enough to hand it to a
// daemon about to bind it.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// waitReady polls the daemon's /v2/health until it answers 200 (ok or
// degraded — both mean "can serve") or the deadline passes. Readiness
// rides the health plane instead of guessing at a representative route.
func waitReady(t *testing.T, baseURL string, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		resp, err := http.Get(baseURL + "/v2/health")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("daemon at %s not healthy after %s", baseURL, deadline)
}

func startDaemon(t *testing.T, bin string, args ...string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
}

// scrape fetches and parses /v2/metrics from a live daemon.
func scrape(t *testing.T, baseURL string) *obs.Metrics {
	t.Helper()
	resp, err := http.Get(baseURL + "/v2/metrics")
	if err != nil {
		t.Fatalf("scrape %s: %v", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("scrape %s: status %d: %s", baseURL, resp.StatusCode, body)
	}
	m, err := obs.ParseMetrics(resp.Body)
	if err != nil {
		t.Fatalf("scrape %s: %v", baseURL, err)
	}
	return m
}

// coreFamilies is the metric surface the observability docs promise; a
// scrape of a freshly booted primary must already expose every one.
var coreFamilies = []string{
	"p2drm_http_requests_total",
	"p2drm_http_request_duration_seconds",
	"p2drm_http_slow_requests_total",
	"p2drm_kvstore_segments",
	"p2drm_kvstore_live_keys",
	"p2drm_kvstore_compactions_total",
	"p2drm_ops_operations",
	"p2drm_ops_finished_total",
	"p2drm_crypto_group_precomputed",
	"p2drm_crypto_batch_verify_runs_total",
	"p2drm_health_status",
	"p2drm_health_transitions_total",
	"p2drm_slo_availability_ratio",
	"p2drm_slo_latency_burn_rate",
}

func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots daemons; skipped in -short")
	}
	bin := t.TempDir()
	p2drmd := filepath.Join(bin, "p2drmd")
	p2drmLoad := filepath.Join(bin, "p2drm-load")
	for path, pkg := range map[string]string{p2drmd: "p2drm/cmd/p2drmd", p2drmLoad: "p2drm/cmd/p2drm-load"} {
		out, err := exec.Command("go", "build", "-o", path, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	primaryPort := freePort(t)
	replicaPort := freePort(t)
	primaryURL := fmt.Sprintf("http://127.0.0.1:%d", primaryPort)
	replicaURL := fmt.Sprintf("http://127.0.0.1:%d", replicaPort)

	// Durable state on both sides: an in-memory primary has no WAL to
	// ship, which would leave the replica in permanent snapshot
	// fallback instead of actually replicating.
	startDaemon(t, p2drmd, "-lab", "-state", filepath.Join(bin, "primary-state"),
		"-addr", fmt.Sprintf("127.0.0.1:%d", primaryPort))
	waitReady(t, primaryURL, 30*time.Second)
	startDaemon(t, p2drmd, "-lab", "-seed-demo=false", "-state", filepath.Join(bin, "replica-state"),
		"-addr", fmt.Sprintf("127.0.0.1:%d", replicaPort), "-replica-of", primaryURL)
	waitReady(t, replicaURL, 30*time.Second)

	// Pre-run scrape: every core family must exist before any load —
	// families register at construction, not first increment.
	startMetrics := scrape(t, primaryURL)
	for _, fam := range coreFamilies {
		if _, ok := startMetrics.Types[fam]; !ok {
			t.Errorf("core metric family %q missing from /v2/metrics", fam)
		}
	}
	replicaMetrics := scrape(t, replicaURL)
	for _, fam := range []string{"p2drm_replica_lag_bytes", "p2drm_replica_lag_segments", "p2drm_replica_lag_known", "p2drm_replica_records_applied_total"} {
		if _, ok := replicaMetrics.Types[fam]; !ok {
			t.Errorf("replica metric family %q missing from replica /v2/metrics", fam)
		}
	}

	report := filepath.Join(bin, "report.json")
	cmd := exec.Command(p2drmLoad,
		"-lab", "-primary", primaryURL, "-replicas", replicaURL,
		"-scenario", "mixed", "-rps", "20", "-duration", "5s",
		"-users", "4", "-seed", "7", "-out", report)
	out, err := cmd.CombinedOutput()
	if err != nil {
		// The command exits non-zero when any request failed (non-2xx):
		// that IS the smoke failure.
		t.Fatalf("p2drm-load failed: %v\n%s", err, out)
	}
	t.Logf("p2drm-load:\n%s", out)

	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Scenario string               `json:"scenario"`
		Result   *workload.LoadResult `json:"result"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v\n%s", err, raw)
	}
	res := rep.Result
	if rep.Scenario != "mixed" || res == nil {
		t.Fatalf("malformed report: %s", raw)
	}
	if res.Sent == 0 {
		t.Fatal("report: nothing sent")
	}
	if res.Errors != 0 {
		t.Fatalf("report counts %d errors: %s", res.Errors, raw)
	}
	if len(res.Ops) == 0 {
		t.Fatal("report has no per-op sections")
	}
	for kind, sum := range res.Ops {
		if sum.Count > 0 && (sum.Latency.Count == 0 || sum.Latency.Max == 0) {
			t.Errorf("op %s: %d requests but empty histogram", kind, sum.Count)
		}
	}
	if res.AchievedRPS <= 0 {
		t.Error("report: achieved RPS missing")
	}

	// Post-run scrape: every counter family must be monotonic across the
	// run, and the HTTP request counter must have absorbed the load.
	endMetrics := scrape(t, primaryURL)
	for _, fam := range endMetrics.CounterFamilies() {
		endSum, _ := endMetrics.SumValues(fam, nil)
		startSum, n := startMetrics.SumValues(fam, nil)
		if n > 0 && endSum < startSum {
			t.Errorf("counter family %q went backwards: %v -> %v", fam, startSum, endSum)
		}
	}
	startReqs, _ := startMetrics.SumValues("p2drm_http_requests_total", nil)
	endReqs, _ := endMetrics.SumValues("p2drm_http_requests_total", nil)
	if endReqs-startReqs < float64(res.Sent)/2 {
		t.Errorf("server counted %v requests during a run that sent %d", endReqs-startReqs, res.Sent)
	}
	if sum, ok := obs.HistogramDelta(startMetrics, endMetrics,
		"p2drm_http_request_duration_seconds", nil); !ok || sum.Count == 0 {
		t.Error("server-side HTTP latency histogram empty across the run")
	}

	// The report must carry the paired server view (satellite of the
	// same run: stats delta + server-side percentiles).
	var full struct {
		ServerStatsStart json.RawMessage `json:"server_stats_start"`
		ServerDelta      *struct {
			HTTPLatency *obs.HistSummary `json:"http_latency_seconds"`
		} `json:"server_delta"`
	}
	if err := json.Unmarshal(raw, &full); err != nil {
		t.Fatal(err)
	}
	if len(full.ServerStatsStart) == 0 || strings.TrimSpace(string(full.ServerStatsStart)) == "null" {
		t.Error("report missing server_stats_start snapshot")
	}
	if full.ServerDelta == nil || full.ServerDelta.HTTPLatency == nil || full.ServerDelta.HTTPLatency.Count == 0 {
		t.Error("report missing server-side latency delta")
	}

	// One capacity-sweep step against the live topology: the curve
	// machinery (stepped run, merged client p99, post-step health
	// verdict, JSON schema) end to end. A single low-rate step must not
	// breach anything.
	sweepOut := filepath.Join(bin, "sweep.json")
	cmd = exec.Command(p2drmLoad,
		"-lab", "-primary", primaryURL,
		"-scenario", "mixed", "-sweep", "-sweep-steps", "1",
		"-rps", "15", "-duration", "2s", "-users", "4", "-seed", "11",
		"-slo-p99", "2s", "-out", sweepOut)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("p2drm-load -sweep failed: %v\n%s", err, out)
	} else {
		t.Logf("sweep:\n%s", out)
	}
	rawSweep, err := os.ReadFile(sweepOut)
	if err != nil {
		t.Fatal(err)
	}
	var sw struct {
		Steps []struct {
			Step        int     `json:"step"`
			AchievedRPS float64 `json:"achieved_rps"`
			Sent        int64   `json:"sent"`
			P99         int64   `json:"p99_ns"`
			Health      string  `json:"health"`
			Breach      string  `json:"breach"`
		} `json:"steps"`
		StopReason  string  `json:"stop_reason"`
		CapacityRPS float64 `json:"capacity_rps"`
	}
	if err := json.Unmarshal(rawSweep, &sw); err != nil {
		t.Fatalf("sweep report not valid JSON: %v\n%s", err, rawSweep)
	}
	if len(sw.Steps) != 1 || sw.StopReason != "max-steps" {
		t.Fatalf("sweep: want 1 clean step, got %s", rawSweep)
	}
	st := sw.Steps[0]
	if st.Sent == 0 || st.AchievedRPS <= 0 || st.P99 <= 0 {
		t.Errorf("sweep step empty: %+v", st)
	}
	if st.Health == "" || st.Health == "unavailable" || st.Health == "failing" {
		t.Errorf("sweep step health = %q, want a live ok/degraded verdict", st.Health)
	}
	if sw.CapacityRPS <= 0 {
		t.Errorf("sweep capacity = %v, want > 0", sw.CapacityRPS)
	}
	// CI archives the curve when asked to.
	if dst := os.Getenv("P2DRM_SWEEP_OUT"); dst != "" {
		if err := os.WriteFile(dst, rawSweep, 0o644); err != nil {
			t.Errorf("archive sweep report: %v", err)
		}
	}

	// Short soak: the per-interval latency series must tile the run —
	// interval sent counts and histogram counts both sum to the totals.
	soakOut := filepath.Join(bin, "soak.json")
	cmd = exec.Command(p2drmLoad,
		"-lab", "-primary", primaryURL,
		"-scenario", "mixed", "-soak", "-soak-interval", "1s",
		"-rps", "15", "-duration", "3s", "-users", "4", "-seed", "13",
		"-out", soakOut)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("p2drm-load -soak failed: %v\n%s", err, out)
	}
	rawSoak, err := os.ReadFile(soakOut)
	if err != nil {
		t.Fatal(err)
	}
	var soak struct {
		Soak []struct {
			Sent    int64 `json:"sent"`
			Latency struct {
				Count int64 `json:"count"`
				P99   int64 `json:"p99_ns"`
			} `json:"latency"`
		} `json:"soak"`
		Result *workload.LoadResult `json:"result"`
	}
	if err := json.Unmarshal(rawSoak, &soak); err != nil {
		t.Fatalf("soak report not valid JSON: %v\n%s", err, rawSoak)
	}
	if len(soak.Soak) < 2 || soak.Result == nil {
		t.Fatalf("soak: want ≥ 2 interval points, got %s", rawSoak)
	}
	var intervalSent, intervalDone int64
	for _, sp := range soak.Soak {
		intervalSent += sp.Sent
		intervalDone += sp.Latency.Count
	}
	if intervalSent != soak.Result.Sent || intervalDone != soak.Result.Sent {
		t.Errorf("soak intervals do not tile the run: sent %d done %d want %d",
			intervalSent, intervalDone, soak.Result.Sent)
	}
}
