// Command p2drm is the user-side CLI: a smartcard wallet plus the client
// half of every P2DRM protocol, speaking to a p2drmd daemon.
//
// Local state (card seed, wallet, pseudonym bookkeeping) lives in -home.
//
//	p2drm -home ~/.p2drm init alice            create card + bank account
//	p2drm catalog                              list items
//	p2drm buy song-blue                        anonymous purchase
//	p2drm wallet                               list held licenses
//	p2drm play <serial-prefix> -o out.bin      compliant playback
//	p2drm exchange <serial-prefix> -o tok.anon retire license → bearer token
//	p2drm redeem tok.anon                      bearer token → new license
package main

import (
	"crypto/rand"
	"crypto/rsa"
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"p2drm/internal/cryptox/kdf"
	"p2drm/internal/cryptox/rsablind"
	"p2drm/internal/cryptox/schnorr"
	"p2drm/internal/device"
	"p2drm/internal/httpapi"
	"p2drm/internal/kvstore"
	"p2drm/internal/license"
	"p2drm/internal/provider"
	"p2drm/internal/smartcard"
)

func main() {
	log.SetFlags(0)
	var (
		server = flag.String("server", "http://127.0.0.1:8474", "p2drmd base URL")
		home   = flag.String("home", ".p2drm", "local wallet directory")
		out    = flag.String("o", "", "output file (play/exchange)")
		lab    = flag.Bool("lab", false, "laboratory group parameters (must match the daemon)")
		token  = flag.String("token", "", "bearer token for a daemon with auth configured (user tier for buy/exchange/redeem, admin tier for init)")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		log.Fatal("usage: p2drm [flags] init|catalog|buy|wallet|play|exchange|redeem ...")
	}

	group := schnorr.Group2048()
	if *lab {
		group = schnorr.Group768()
	}
	client := httpapi.NewClient(*server, group)
	client.Token = *token
	w := &wallet{
		home:   *home,
		client: client,
		group:  group,
	}

	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "init":
		err = w.cmdInit(args)
	case "catalog":
		err = w.cmdCatalog()
	case "buy":
		err = w.cmdBuy(args)
	case "wallet":
		err = w.cmdWallet()
	case "play":
		err = w.cmdPlay(args, *out)
	case "exchange":
		err = w.cmdExchange(args, *out)
	case "redeem":
		err = w.cmdRedeem(args)
	default:
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		log.Fatalf("p2drm: %v", err)
	}
}

// wallet is the CLI's local state.
type wallet struct {
	home   string
	client *httpapi.Client
	group  *schnorr.Group

	store *kvstore.Store
	card  *smartcard.Card
}

func (w *wallet) open() error {
	if w.store != nil {
		return nil
	}
	st, err := kvstore.Open(w.home)
	if err != nil {
		return err
	}
	w.store = st
	seed, ok := st.Get([]byte("card-seed"))
	if !ok {
		return fmt.Errorf("wallet not initialised; run: p2drm init <account>")
	}
	var s [kdf.SeedLen]byte
	copy(s[:], seed)
	w.card = smartcard.New(w.group, s)
	return nil
}

func (w *wallet) account() (string, error) {
	acct, ok := w.store.Get([]byte("bank-account"))
	if !ok {
		return "", fmt.Errorf("no bank account recorded; re-run init")
	}
	return string(acct), nil
}

// nextPseudonym allocates a fresh pseudonym index, persisted.
func (w *wallet) nextPseudonym() (uint32, error) {
	var idx uint32
	if raw, ok := w.store.Get([]byte("next-pseudonym")); ok && len(raw) == 4 {
		idx = binary.BigEndian.Uint32(raw)
	}
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], idx+1)
	if err := w.store.Put([]byte("next-pseudonym"), buf[:]); err != nil {
		return 0, err
	}
	return idx, nil
}

func (w *wallet) cmdInit(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: p2drm init <bank-account-name>")
	}
	st, err := kvstore.Open(w.home)
	if err != nil {
		return err
	}
	w.store = st
	if st.Has([]byte("card-seed")) {
		return fmt.Errorf("wallet already initialised in %s", w.home)
	}
	seed := make([]byte, kdf.SeedLen)
	if _, err := rand.Read(seed); err != nil {
		return err
	}
	if err := st.Put([]byte("card-seed"), seed); err != nil {
		return err
	}
	if err := st.Put([]byte("bank-account"), []byte(args[0])); err != nil {
		return err
	}
	// Try to open the account at the daemon's demo bank (ignore "exists").
	if err := w.client.CreateAccount(args[0], 50); err != nil &&
		!strings.Contains(err.Error(), "exists") {
		log.Printf("warning: bank account: %v", err)
	}
	log.Printf("wallet initialised in %s (account %q)", w.home, args[0])
	return nil
}

func (w *wallet) cmdCatalog() error {
	items, err := w.client.Catalog()
	if err != nil {
		return err
	}
	for _, it := range items {
		fmt.Printf("%-12s %-28s %3d credits\n", it.ID, it.Title, it.PriceCredits)
	}
	return nil
}

// licKey namespaces stored licenses.
func licKey(serial license.Serial) []byte { return []byte("lic:" + serial.String()) }

func (w *wallet) cmdBuy(args []string) error {
	if err := w.open(); err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: p2drm buy <content-id>")
	}
	contentID := license.ContentID(args[0])
	items, err := w.client.Catalog()
	if err != nil {
		return err
	}
	var price int64 = -1
	for _, it := range items {
		if it.ID == args[0] {
			price = it.PriceCredits
		}
	}
	if price < 0 {
		return fmt.Errorf("content %q not in catalog", args[0])
	}
	acct, err := w.account()
	if err != nil {
		return err
	}
	idx, err := w.nextPseudonym()
	if err != nil {
		return err
	}
	ps, err := w.card.Pseudonym(idx)
	if err != nil {
		return err
	}
	nonce, err := w.client.Challenge()
	if err != nil {
		return err
	}
	proof, err := w.card.Prove(idx, provider.RegisterContext(nonce))
	if err != nil {
		return err
	}
	if err := w.client.Register(ps.SignPublic(w.group), ps.EncPublic(w.group), proof, nonce); err != nil {
		return err
	}
	coins, err := w.client.WithdrawCoins(acct, int(price))
	if err != nil {
		return err
	}
	lic, err := w.client.Purchase(contentID, ps.SignPublic(w.group), ps.EncPublic(w.group), coins)
	if err != nil {
		return err
	}
	if err := w.store.Put(licKey(lic.Serial), lic.Marshal()); err != nil {
		return err
	}
	var ib [4]byte
	binary.BigEndian.PutUint32(ib[:], idx)
	if err := w.store.Put([]byte("idx:"+lic.Serial.String()), ib[:]); err != nil {
		return err
	}
	log.Printf("bought %s — license %s (pseudonym #%d)", contentID, lic.Serial.String()[:16], idx)
	return nil
}

func (w *wallet) cmdWallet() error {
	if err := w.open(); err != nil {
		return err
	}
	n := 0
	w.store.PrefixScan([]byte("lic:"), func(k, v []byte) bool {
		lic, err := license.UnmarshalPersonalized(v)
		if err != nil {
			return true
		}
		fmt.Printf("%s  %-12s issued %s\n",
			lic.Serial.String()[:16], lic.ContentID, lic.IssuedAt.Format(time.RFC3339))
		n++
		return true
	})
	if n == 0 {
		fmt.Println("(wallet empty)")
	}
	return nil
}

// findLicense resolves a serial prefix to a stored license + pseudonym.
func (w *wallet) findLicense(prefix string) (*license.Personalized, uint32, error) {
	var found *license.Personalized
	w.store.PrefixScan([]byte("lic:"), func(k, v []byte) bool {
		if strings.HasPrefix(string(k[len("lic:"):]), prefix) {
			if lic, err := license.UnmarshalPersonalized(v); err == nil {
				found = lic
				return false
			}
		}
		return true
	})
	if found == nil {
		return nil, 0, fmt.Errorf("no wallet license matches %q", prefix)
	}
	raw, ok := w.store.Get([]byte("idx:" + found.Serial.String()))
	if !ok || len(raw) != 4 {
		return nil, 0, fmt.Errorf("pseudonym record missing for %s", found.Serial.String()[:16])
	}
	return found, binary.BigEndian.Uint32(raw), nil
}

func (w *wallet) cmdPlay(args []string, out string) error {
	if err := w.open(); err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: p2drm play <serial-prefix> [-o file]")
	}
	lic, idx, err := w.findLicense(args[0])
	if err != nil {
		return err
	}
	blob, err := w.client.Content(lic.ContentID)
	if err != nil {
		return err
	}
	sf, err := w.client.RevocationFilter()
	if err != nil {
		return err
	}
	devState, err := kvstore.Open(w.home + "/device")
	if err != nil {
		return err
	}
	defer devState.Close()
	provPub, err := w.pinnedProviderKey()
	if err != nil {
		return err
	}
	dev, err := device.New(device.Config{
		ID: "cli-device", Class: "audio", Region: "EU",
		Group: w.group, ProviderPub: provPub, State: devState,
	})
	if err != nil {
		return err
	}
	if err := dev.InstallRevocationFilter(sf); err != nil {
		return err
	}
	dst := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if err := dev.Play(w.card, idx, lic, newReader(blob), dst); err != nil {
		return err
	}
	if out != "" {
		log.Printf("played %s -> %s", lic.ContentID, out)
	}
	return nil
}

func (w *wallet) cmdExchange(args []string, out string) error {
	if err := w.open(); err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: p2drm exchange <serial-prefix> -o token-file")
	}
	if out == "" {
		return fmt.Errorf("exchange requires -o <token-file>")
	}
	lic, idx, err := w.findLicense(args[0])
	if err != nil {
		return err
	}
	denomPub, denomID, err := w.client.Denomination(lic.ContentID)
	if err != nil {
		return err
	}
	serial, err := license.NewSerial()
	if err != nil {
		return err
	}
	msg := license.AnonymousSigningBytes(serial, denomID)
	blinded, st, err := rsablind.Blind(denomPub, msg, rand.Reader)
	if err != nil {
		return err
	}
	nonce, err := w.client.Challenge()
	if err != nil {
		return err
	}
	proof, err := w.card.Prove(idx, provider.ExchangeContext(nonce, lic.Serial))
	if err != nil {
		return err
	}
	blindSig, err := w.client.Exchange(lic, proof, nonce, blinded)
	if err != nil {
		return err
	}
	sig, err := rsablind.Unblind(denomPub, st, blindSig)
	if err != nil {
		return err
	}
	anon := &license.Anonymous{Serial: serial, Denom: denomID, Sig: sig}
	if err := os.WriteFile(out, anon.Marshal(), 0o600); err != nil {
		return err
	}
	w.store.Delete(licKey(lic.Serial))
	w.store.Delete([]byte("idx:" + lic.Serial.String()))
	log.Printf("exchanged %s for bearer token %s (give this file to the recipient)", lic.Serial.String()[:16], out)
	return nil
}

func (w *wallet) cmdRedeem(args []string) error {
	if err := w.open(); err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: p2drm redeem <token-file>")
	}
	raw, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	anon, err := license.UnmarshalAnonymous(raw)
	if err != nil {
		return err
	}
	idx, err := w.nextPseudonym()
	if err != nil {
		return err
	}
	ps, err := w.card.Pseudonym(idx)
	if err != nil {
		return err
	}
	nonce, err := w.client.Challenge()
	if err != nil {
		return err
	}
	proof, err := w.card.Prove(idx, provider.RegisterContext(nonce))
	if err != nil {
		return err
	}
	if err := w.client.Register(ps.SignPublic(w.group), ps.EncPublic(w.group), proof, nonce); err != nil {
		return err
	}
	lic, err := w.client.Redeem(anon, ps.SignPublic(w.group), ps.EncPublic(w.group))
	if err != nil {
		return err
	}
	if err := w.store.Put(licKey(lic.Serial), lic.Marshal()); err != nil {
		return err
	}
	var ib [4]byte
	binary.BigEndian.PutUint32(ib[:], idx)
	if err := w.store.Put([]byte("idx:"+lic.Serial.String()), ib[:]); err != nil {
		return err
	}
	log.Printf("redeemed token -> license %s for %s", lic.Serial.String()[:16], lic.ContentID)
	return nil
}

// pinnedProviderKey implements trust-on-first-use for the provider's
// verification key: on first contact the key is fetched and stored; on
// later runs a changed key is refused (a swapped key would let a rogue
// server feed the device forged licenses and filters).
func (w *wallet) pinnedProviderKey() (*rsa.PublicKey, error) {
	pub, err := w.client.ProviderKey()
	if err != nil {
		return nil, err
	}
	fetched := append(pub.N.Bytes(), byte(pub.E>>16), byte(pub.E>>8), byte(pub.E))
	if pinned, ok := w.store.Get([]byte("provider-key")); ok {
		if string(pinned) != string(fetched) {
			return nil, fmt.Errorf("provider key changed since first use; refusing")
		}
		return pub, nil
	}
	if err := w.store.Put([]byte("provider-key"), fetched); err != nil {
		return nil, err
	}
	return pub, nil
}

func newReader(b []byte) *strings.Reader { return strings.NewReader(string(b)) }
