// Command p2drm-bench regenerates the evaluation tables (DESIGN.md §2 /
// EXPERIMENTS.md).
//
//	p2drm-bench               run every experiment with lab parameters
//	p2drm-bench -full         include production-parameter sweeps (slower)
//	p2drm-bench -only T4,F1   run a subset
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"p2drm/internal/bench"
)

func main() {
	log.SetFlags(0)
	var (
		full = flag.Bool("full", false, "production-parameter sweeps (adds minutes)")
		only = flag.String("only", "", "comma-separated experiment IDs (e.g. T1,F1)")
	)
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	ran := 0
	for _, r := range bench.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		log.Printf("running %s ...", r.ID)
		table, err := r.Run(!*full)
		if err != nil {
			log.Fatalf("%s: %v", r.ID, err)
		}
		fmt.Println(table.Render())
		ran++
	}
	if ran == 0 {
		log.Fatalf("no experiments matched -only=%q", *only)
	}
	_ = os.Stdout
}
