// Command p2drmd runs the P2DRM content provider (plus a demo bank) as an
// HTTP daemon.
//
// Usage:
//
//	p2drmd -addr :8474 -state /var/lib/p2drm -rsa-bits 2048 -seed-demo \
//	       -bank-shards 16 -wal-group-commit \
//	       -kv-index-shards 16 -kv-segment-bytes 67108864 \
//	       -admin-socket /run/p2drmd.socket -log-level info
//
// With -seed-demo the catalog is populated with a few items and a funded
// demo bank account ("demo", 100 credits), so the p2drm CLI works out of
// the box.
//
// # API surfaces
//
// The daemon serves two API versions (see docs/rest.md): the original
// bare-JSON /v1/ surface, and the production /v2/ surface where every
// response is a snapd-style envelope, routes carry auth tiers, and
// long-running actions (compaction, revocation rebuild, bulk batches,
// replica promotion/resync) run as background operations pollable at
// GET /v2/operations/{id}. Operations persist in a kvstore under
// <state>/ops, so work in flight at a crash is re-adopted — resumed or
// marked aborted — on the next start.
//
// -user-token and -admin-token configure bearer credentials for the
// auth tiers, enforced identically on /v1/ and /v2/; with both empty
// the API is open (every caller is admin), which keeps demo setups
// working. -admin-socket additionally serves the same handler on a
// unix socket (created mode 0600) whose callers are authenticated by
// SO_PEERCRED (root and the daemon's own uid are admin), so local
// administration needs no token — the snapd model.
//
// # Observability
//
// GET /v2/metrics renders every engine and HTTP metric family in
// Prometheus text format (aggregate-only; see docs/observability.md),
// GET /v2/debug/traces (admin) returns the retained slow-request
// traces, and the admin socket additionally serves net/http/pprof
// under /debug/pprof/. -log-level tunes the leveled structured log on
// stderr.
//
// # Storage
//
// -bank-shards sizes the bank's balance-shard count; -wal-group-commit
// (default on) opens the durable stores in kvstore group-commit mode, so
// every acknowledged write — spent coins, redeemed serials, issued
// licenses — is fsynced before its HTTP response, with concurrent writers
// sharing each fsync. Disabling it falls back to flush-on-write /
// fsync-on-close (faster for single-user demos, loses the tail on an OS
// crash).
//
// -kv-index-shards sizes the kvstore's lock-striped in-memory index
// (rounded up to a power of two) and -kv-segment-bytes caps one WAL
// segment file; stores with a state directory roll segments at that size
// and compact them incrementally in the background. GET /v2/stats
// reports the resulting engine shape (segments, live keys, dead bytes,
// compactions) per store.
//
// # Replication
//
// A primary daemon automatically serves its provider and bank stores
// under replica/* (manifest, segment shipping, status). A second
// daemon started with
//
//	p2drmd -addr :8475 -state /var/lib/p2drm-replica -replica-of http://primary:8474
//
// runs as a READ REPLICA instead: no keys are generated, no provider or
// bank is mounted; the daemon tails both stores from the primary
// (snapshot bootstrap, then incremental WAL-segment shipping with
// reconnect/backoff, -replica-poll tunes the idle poll) and serves
// read-only traffic while rejecting writes with 403. POST
// /v2/replica/promote (async) stops replication and opens the local
// stores for writes; POST /v2/replica/resync forces a fresh snapshot
// bootstrap (see internal/replica for the protocol and failover
// semantics).
package main

import (
	"context"
	"crypto/rand"
	"crypto/rsa"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"p2drm/internal/cryptox/schnorr"
	"p2drm/internal/httpapi"
	"p2drm/internal/kvstore"
	"p2drm/internal/license"
	"p2drm/internal/ops"
	"p2drm/internal/payment"
	"p2drm/internal/provider"
	"p2drm/internal/rel"
	"p2drm/internal/replica"
)

// opsGCEvery / opsGCRetain pace the background reaping of terminal
// operations: poll-once-a-minute granularity, an hour for clients to
// collect results.
const (
	opsGCEvery  = time.Minute
	opsGCRetain = time.Hour
)

// fatal logs at error level and exits. Used only on startup paths,
// before any protocol state needs a clean close.
func fatal(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(1)
}

// parseLogLevel maps the -log-level flag onto slog levels; unknown
// values fall back to info.
func parseLogLevel(s string) slog.Level {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

func main() {
	var (
		addr         = flag.String("addr", ":8474", "listen address")
		adminSocket  = flag.String("admin-socket", "", "also serve on this unix socket with SO_PEERCRED admin auth and /debug/pprof/")
		stateDir     = flag.String("state", "", "state directory (empty = in-memory)")
		rsaBits      = flag.Int("rsa-bits", 2048, "provider/bank RSA key size")
		lab          = flag.Bool("lab", false, "use laboratory parameters (768-bit group, 1024-bit RSA)")
		seedDemo     = flag.Bool("seed-demo", true, "seed demo catalog and bank account")
		userToken    = flag.String("user-token", "", "bearer token for the user tier, enforced on /v1 and /v2 (empty with -admin-token empty = open API)")
		adminToken   = flag.String("admin-token", "", "bearer token for the admin tier, enforced on /v1 and /v2")
		bankShards   = flag.Int("bank-shards", payment.DefaultBankShards, "bank balance-shard count")
		groupWAL     = flag.Bool("wal-group-commit", true, "fsync durable stores via group commit (off = fsync only on close)")
		kvShards     = flag.Int("kv-index-shards", kvstore.DefaultIndexShards, "kvstore index lock-stripe count (rounded up to a power of two)")
		kvSegBytes   = flag.Int64("kv-segment-bytes", kvstore.DefaultSegmentBytes, "kvstore WAL segment size cap in bytes")
		replicaOf    = flag.String("replica-of", "", "run as a read replica of the primary daemon at this base URL")
		replicaPoll  = flag.Duration("replica-poll", 500*time.Millisecond, "replica idle tail poll interval")
		primaryToken = flag.String("primary-token", "", "bearer token presented to the primary daemon (replica mode, when the primary has auth configured)")
		cryptoPre    = flag.Bool("crypto-precompute", true, "build the fixed-base exponentiation table for the group generator")
		noncePool    = flag.Int("crypto-nonce-pool", 256, "Schnorr/KEM nonce pool capacity (0 disables pooling)")
		poolFillers  = flag.Int("crypto-pool-fillers", 1, "background filler goroutines per crypto pool")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		sloLatency   = flag.Duration("slo-latency", 250*time.Millisecond, "per-request latency SLO target feeding /v2/health and the p2drm_slo_* families")
	)
	flag.Parse()

	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr,
		&slog.HandlerOptions{Level: parseLogLevel(*logLevel)})))

	walOpts := kvstore.Options{
		Sync:         kvstore.SyncOnClose,
		IndexShards:  *kvShards,
		SegmentBytes: *kvSegBytes,
		// Reclaim dead segment bytes continuously; compaction never
		// blocks request-path writers.
		CompactEvery: 30 * time.Second,
	}
	if *groupWAL {
		walOpts.Sync = kvstore.SyncGroupCommit
	}
	auth := httpapi.Auth{UserToken: *userToken, AdminToken: *adminToken}

	if *replicaOf != "" {
		runReplica(*addr, *adminSocket, *stateDir, *replicaOf, *primaryToken, *replicaPoll, *sloLatency, walOpts, auth)
		return
	}
	slog.Info("starting",
		"bank_shards", *bankShards, "wal_group_commit", *groupWAL,
		"kv_index_shards", *kvShards, "kv_segment_bytes", *kvSegBytes,
		"kv_compact_every", walOpts.CompactEvery)

	group := schnorr.Group2048()
	bits := *rsaBits
	if *lab {
		group = schnorr.Group768()
		bits = 1024
	}
	if *cryptoPre {
		group.Precompute()
	}
	if *noncePool > 0 {
		fillers := *poolFillers
		if fillers < 1 {
			fillers = 1
		}
		group.EnableNoncePool(*noncePool, fillers)
	}
	slog.Info("crypto acceleration",
		"precompute", *cryptoPre, "nonce_pool", *noncePool, "fillers", *poolFillers)

	slog.Info("generating keys", "rsa_bits", bits, "group", group.Name)
	bankKey, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		fatal("bank key", "err", err)
	}
	provKey, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		fatal("provider key", "err", err)
	}

	bankDir, provDir, opsDir := "", "", ""
	if *stateDir != "" {
		bankDir = *stateDir + "/bank"
		provDir = *stateDir + "/provider"
		opsDir = *stateDir + "/ops"
	}
	spent, err := kvstore.OpenWith(bankDir, walOpts)
	if err != nil {
		fatal("bank store", "err", err)
	}
	bank, err := payment.NewBankSharded(bankKey, spent, *bankShards)
	if err != nil {
		fatal("bank", "err", err)
	}
	if err := bank.CreateAccount("provider", 0); err != nil {
		fatal("provider account", "err", err)
	}
	store, err := kvstore.OpenWith(provDir, walOpts)
	if err != nil {
		fatal("provider store", "err", err)
	}
	prov, err := provider.New(provider.Config{
		Group:        group,
		SignerKey:    provKey,
		DenomKeyBits: bits,
		Store:        store,
		Bank:         bank,
		BankAccount:  "provider",
		Clock:        time.Now,
	})
	if err != nil {
		fatal("provider", "err", err)
	}
	reg, opsStore := openOps(opsDir, walOpts)

	if *seedDemo {
		template := rel.MustParse(`
grant play count 25;
grant transfer;
delegate allow;
valid until "2030-01-01T00:00:00Z";
`)
		demo := []struct {
			id    license.ContentID
			title string
			price int64
		}{
			{"song-blue", "Blue Monday (demo)", 2},
			{"song-red", "Red Rain (demo)", 3},
			{"film-grey", "Grey Matter (demo)", 5},
		}
		for _, d := range demo {
			if _, err := prov.AddContent(d.id, d.title, d.price, template,
				[]byte("demo content payload for "+string(d.id))); err != nil {
				fatal("seed content", "content", d.id, "err", err)
			}
			slog.Info("listed demo content", "content", d.id, "price_credits", d.price)
		}
		if err := bank.CreateAccount("demo", 100); err != nil {
			fatal("demo account", "err", err)
		}
		slog.Info("funded demo bank account", "funds", 100)
	}

	// SIGINT/SIGTERM trigger a graceful drain: Shutdown stops the
	// listener and gives in-flight requests the timeout below to finish.
	// Request contexts are deliberately NOT tied to the signal — they
	// must survive into the drain window; they still cancel on client
	// disconnect.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	handler := httpapi.NewServer(prov).WithBank(bank).
		WithStoreStats("provider", store).
		WithStoreStats("bank", spent).
		WithReplicaSource("provider", replica.NewSource(store)).
		WithReplicaSource("bank", replica.NewSource(spent)).
		WithOps(reg).
		WithAuth(auth)
	// Feed the storage engines' timing hooks into the same registry
	// /v2/metrics renders: fsync/commit-wait/compaction per store.
	plane := handler.Obs()
	plane.SLO.SetLatencyTarget(*sloLatency)
	store.SetObserver(httpapi.StoreObserver(plane, "provider"))
	spent.SetObserver(httpapi.StoreObserver(plane, "bank"))
	if opsStore != nil {
		opsStore.SetObserver(httpapi.StoreObserver(plane, "ops"))
		// The ops store is wired outside WithStoreStats, so its WAL and
		// compaction health probes need explicit registration.
		httpapi.StoreHealth(plane, "ops", opsStore)
	}
	// Adopt operations a previous process left running (the registry is
	// durable under <state>/ops): idempotent kinds re-run, the rest are
	// marked aborted but stay pollable.
	if resumed, aborted := handler.ResumeOps(); resumed+aborted > 0 {
		slog.Info("adopted operations from previous run", "resumed", resumed, "aborted", aborted)
	}
	go opsGCLoop(ctx, reg)

	srv := &http.Server{Addr: *addr, Handler: handler}
	adminSrv, err := serveAdminSocket(*adminSocket, handler)
	if err != nil {
		fatal("admin socket", "err", err)
	}
	// closeStores syncs the WALs; every serving-phase exit path must run
	// it — under -wal-group-commit=false the stores only fsync on Close,
	// and losing redeemed-serial or spent-coin records reopens
	// double-spend windows. (The fatal calls above run before any
	// protocol state exists, so they may exit without it.)
	closeStores := func() {
		reg.Close() // settle in-flight operation persists first
		if err := store.Close(); err != nil {
			slog.Error("close provider store", "err", err)
		}
		if err := spent.Close(); err != nil {
			slog.Error("close bank store", "err", err)
		}
		if opsStore != nil {
			if err := opsStore.Close(); err != nil {
				slog.Error("close ops store", "err", err)
			}
		}
	}
	errc := make(chan error, 1)
	go func() {
		slog.Info("listening", "addr", *addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		slog.Error("serve", "err", err)
		closeStores()
		os.Exit(1)
	case <-ctx.Done():
	}
	slog.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// DeadlineExceeded means in-flight requests were cut off; they
		// will fail their store writes with ErrClosed below. Say so.
		slog.Error("shutdown", "err", err)
	}
	if adminSrv != nil {
		if err := adminSrv.Shutdown(shutdownCtx); err != nil {
			slog.Error("admin shutdown", "err", err)
		}
	}
	closeStores()
}

// openOps builds the operations registry: kvstore-backed when the
// daemon has a state directory (so operations survive restarts),
// volatile otherwise. The ops store always group-commits — an
// operation record that vanishes on crash defeats the registry's
// purpose — but it is tiny and off the request hot path.
func openOps(dir string, walOpts kvstore.Options) (*ops.Registry, *kvstore.Store) {
	if dir == "" {
		return ops.New(nil), nil
	}
	opsOpts := walOpts
	opsOpts.Sync = kvstore.SyncGroupCommit
	st, err := kvstore.OpenWith(dir, opsOpts)
	if err != nil {
		fatal("ops store", "err", err)
	}
	return ops.New(st), st
}

// opsGCLoop reaps terminal operations older than opsGCRetain until ctx
// is done.
func opsGCLoop(ctx context.Context, reg *ops.Registry) {
	t := time.NewTicker(opsGCEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			res := reg.GC(opsGCRetain)
			if res.Reaped > 0 {
				slog.Info("reaped finished operations", "reaped", res.Reaped, "by_kind", res.ByKind)
			}
			if len(res.Errors) > 0 {
				slog.Warn("ops GC could not delete operations", "errors", res.Errors)
			}
		}
	}
}

// serveAdminSocket serves handler on a unix socket whose callers are
// authenticated by SO_PEERCRED (httpapi.PeerCredConnContext): root and
// the daemon's own uid reach the admin tier with no token. The socket
// additionally mounts net/http/pprof under /debug/pprof/ — profiling
// stays off the TCP listener entirely, gated by filesystem access to
// the mode-0600 socket. Returns nil when path is empty.
func serveAdminSocket(path string, handler http.Handler) (*http.Server, error) {
	if path == "" {
		return nil, nil
	}
	// A previous unclean exit leaves the socket file behind; remove it
	// so Listen can rebind.
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	l, err := net.Listen("unix", path)
	if err != nil {
		return nil, err
	}
	// net.Listen creates the socket world-connectable; since any peer on
	// it gets at least the user tier via SO_PEERCRED, restrict it to the
	// daemon's own uid. Operators who want a looser group socket can
	// widen it after start.
	if err := os.Chmod(path, 0o600); err != nil {
		l.Close()
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", handler)
	srv := &http.Server{Handler: mux, ConnContext: httpapi.PeerCredConnContext}
	go func() {
		slog.Info("admin socket listening", "path", path)
		if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
			slog.Error("admin socket", "err", err)
		}
	}()
	return srv, nil
}

// runReplica is follower mode: tail the primary's provider and bank
// stores (snapshot bootstrap + incremental segment shipping with
// reconnect/backoff) and serve the read-only replica HTTP surface. No
// keys are generated — a replica holds replicated state, not signing
// capability; POST /v2/replica/promote opens the stores for writes.
func runReplica(addr, adminSocket, stateDir, primaryURL, primaryToken string, poll, sloLatency time.Duration, walOpts kvstore.Options, auth httpapi.Auth) {
	slog.Info("replica mode", "primary", primaryURL, "poll", poll)
	client := httpapi.NewClient(primaryURL, nil)
	// The replication reads are guest-tier, but releasing a pin lease is
	// user-tier on an auth-configured primary.
	client.Token = primaryToken
	followers := make(map[string]*replica.Follower, 2)
	for _, name := range []string{"provider", "bank"} {
		dir := ""
		if stateDir != "" {
			dir = stateDir + "/replica-" + name
		}
		name := name
		f, err := replica.Open(replica.Options{
			Dir:          dir,
			Fetch:        httpapi.NewReplicaFetcher(client, name),
			KV:           walOpts,
			PollInterval: poll,
			// The replica package reports reconnects, backoff and
			// snapshot fallbacks through this hook; route them into the
			// leveled log with the store name attached.
			Logf: func(format string, args ...any) {
				slog.Info(fmt.Sprintf(format, args...), "store", name)
			},
		})
		if err != nil {
			fatal("open replica", "store", name, "err", err)
		}
		f.Start()
		followers[name] = f
	}
	opsDir := ""
	if stateDir != "" {
		opsDir = stateDir + "/replica-ops"
	}
	reg, opsStore := openOps(opsDir, walOpts)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	handler := httpapi.NewReplicaServer(followers).WithOps(reg).WithAuth(auth)
	// Feed fetch/apply timings into the follower server's registry.
	plane := handler.Obs()
	plane.SLO.SetLatencyTarget(sloLatency)
	for name, f := range followers {
		f.SetObserver(httpapi.FollowerObserver(plane, name))
	}
	if opsStore != nil {
		opsStore.SetObserver(httpapi.StoreObserver(plane, "ops"))
		httpapi.StoreHealth(plane, "ops", opsStore)
	}
	if resumed, aborted := handler.ResumeOps(); resumed+aborted > 0 {
		slog.Info("adopted operations from previous run", "resumed", resumed, "aborted", aborted)
	}
	go opsGCLoop(ctx, reg)

	srv := &http.Server{Addr: addr, Handler: handler}
	adminSrv, err := serveAdminSocket(adminSocket, handler)
	if err != nil {
		fatal("admin socket", "err", err)
	}
	errc := make(chan error, 1)
	go func() {
		slog.Info("replica listening", "addr", addr)
		errc <- srv.ListenAndServe()
	}()
	closeFollowers := func() {
		reg.Close()
		for name, f := range followers {
			if err := f.Close(); err != nil {
				slog.Error("close replica", "store", name, "err", err)
			}
		}
		if opsStore != nil {
			if err := opsStore.Close(); err != nil {
				slog.Error("close ops store", "err", err)
			}
		}
	}
	select {
	case err := <-errc:
		slog.Error("serve", "err", err)
		closeFollowers()
		os.Exit(1)
	case <-ctx.Done():
	}
	slog.Info("replica shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		slog.Error("shutdown", "err", err)
	}
	if adminSrv != nil {
		if err := adminSrv.Shutdown(shutdownCtx); err != nil {
			slog.Error("admin shutdown", "err", err)
		}
	}
	closeFollowers()
}
